"""Complementary-prompt generation (paper §3.2, Figure 3b, Algorithm 1).

Two phases, exactly as Algorithm 1 lays out:

* ``FewShotGenerate`` — a teacher LLM, conditioned on the golden exemplars
  of the prompt's (predicted) category, drafts a complementary prompt.  The
  teacher is imperfect: it misses weakly-cued needs, sometimes appends a
  spurious directive, and occasionally commits the classic APE sin of
  *answering* the prompt instead of supplementing it.
* ``IsCorrectPair`` — a critic LLM applies the five error criteria of the
  paper's Figure 5 (intent conflict, superfluous additions, direct
  answering, excessive demands, emptiness).  Failing pairs are regenerated
  with a fresh salt until they pass or the round cap is reached.

The verbatim prompt templates from Figures 4 and 5 are kept as module
constants both for documentation fidelity and because the tests assert the
critic implements each listed criterion.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, fields

from repro.core.golden import MAX_DIRECTIVES, GoldenData, build_golden_data, render_complement
from repro.errors import ConfigError
from repro.llm.engine import SimulatedLLM
from repro.pipeline.collect import SelectedPrompt
from repro.pipeline.dataset import PromptPair, PromptPairDataset
from repro.utils import textproc
from repro.utils.rng import stable_hash
from repro.world.aspects import ASPECTS, aspect_names, parse_directives
from repro.world.categories import CATEGORIES

__all__ = [
    "FEW_SHOT_GENERATION_PROMPT",
    "SELECTION_CRITIC_PROMPT",
    "GenerationConfig",
    "FewShotGenerator",
    "CritiqueResult",
    "PairCritic",
    "PairGenerator",
]

# --------------------------------------------------------------------- #
# The paper's prompt templates (Figures 4 and 5), kept verbatim in spirit.
# --------------------------------------------------------------------- #

FEW_SHOT_GENERATION_PROMPT = """\
## Background
You are a master of complementary prompts, skilled only in enhancing user
prompts and unable to respond to them.
Please note:
1. You can only supplement the user prompt, you cannot directly answer it.
2. The complementary information should enhance understanding of the user
   prompt, but cannot extend it.
3. If the user prompt is within a specific writing context, supplement the
   stylistic constraints of that context.
4. The user prompt and the complementary information should be coherent.
5. Supplement the user prompt to cater to human preferences.
Focus on methodology, not specific details; keep it within 30 words.
## Examples
{examples}
## Task
<Prompt>: {prompt}
<Complementary information>:"""

SELECTION_CRITIC_PROMPT = """\
## Background
As an expert in prompt engineering, diagnose whether the automatic prompt
(APE) is a valid supplement to the user input (Prompt).
The criteria for an incorrect APE are:
1. APE deviates from the true intention of the Prompt or conflicts with it.
2. APE provides too many superfluous additions to a complex Prompt.
3. APE directly answers the Prompt instead of supplementing it.
4. APE makes excessive demands on the Prompt.
5. The APE is empty or degenerate.
## Output format
{{ "Reason": str, "Is_correct": "Yes"|"No", "FinalAPE": str }}
## Task
<Prompt>: {prompt}
<APE>: {ape}
<Output>:"""

# Aspect pairs that contradict each other when one is an explicit cue of
# the prompt and the other is demanded by the APE (criterion 1).
_CONFLICTS: tuple[tuple[str, str], ...] = (
    ("brevity", "depth"),
    ("depth", "brevity"),
)

def _pet_aspect(category: str) -> str:
    """The aspect a noisy teacher habitually over-recommends per category."""
    names = aspect_names()
    return names[stable_hash(f"pet␞{category}") % len(names)]


# What a teacher that "directly answers" emits instead of a supplement.
_DIRECT_ANSWER_TEXT = (
    "Here is a considered answer about the question. The short answer is that "
    "it depends on the details, and on balance the first option is preferable."
)


@dataclass(frozen=True)
class GenerationConfig:
    """Noise and loop parameters for Algorithm 1."""

    spurious_rate: float = 0.38
    pet_bias: float = 0.75
    drop_rate: float = 0.12
    direct_answer_rate: float = 0.12
    max_rounds: int = 4
    curate: bool = True

    def validate(self) -> None:
        for name in ("spurious_rate", "pet_bias", "drop_rate", "direct_answer_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.max_rounds < 0:
            raise ConfigError(f"max_rounds must be >= 0, got {self.max_rounds}")

    def as_dict(self) -> dict:
        """JSON-safe dict of every field, in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationConfig":
        """Inverse of :meth:`as_dict`: ``from_dict(c.as_dict()) == c``."""
        return cls(**data)


class FewShotGenerator:
    """``FewShotGenerate`` of Algorithm 1 — the noisy teacher."""

    def __init__(
        self,
        teacher: SimulatedLLM,
        golden: GoldenData,
        config: GenerationConfig,
    ):
        self.teacher = teacher
        self.golden = golden
        self.config = config

    def render_few_shot_prompt(self, prompt_text: str, category: str) -> str:
        """The exact Figure-4 prompt string sent to the teacher."""
        exemplars = self.golden.exemplars(category)
        examples = "\n".join(
            f"<Prompt>: {g.prompt.text}\n<Complementary information>: {g.complement}"
            for g in exemplars
        )
        return FEW_SHOT_GENERATION_PROMPT.format(examples=examples, prompt=prompt_text)

    def generate(self, prompt_text: str, category: str, salt: int = 0) -> str:
        """Draft one complementary prompt for ``prompt_text``.

        The teacher reads the prompt's cues through its own capability,
        drops/adds aspects at the configured noise rates, and occasionally
        answers directly — every failure mode the critic screens for.
        """
        rng_key = stable_hash(f"fewshot␞{self.teacher.name}␞{prompt_text}␞{salt}")
        rng = self.teacher._call_rng("fewshot", prompt_text, str(salt))

        if rng.random() < self.config.direct_answer_rate:
            return _DIRECT_ANSWER_TEXT

        aspects = set(self.teacher.infer_needs(prompt_text))
        # Category prior from the golden exemplars: if the teacher saw no
        # cue at all, it leans on the few-shot examples' modal aspect.
        if not aspects and category in CATEGORIES:
            prior = CATEGORIES[category].aspect_prior
            aspects.add(max(prior, key=prior.get))

        dropped = {a for a in sorted(aspects) if rng.random() < self.config.drop_rate}
        aspects -= dropped
        if rng.random() < self.config.spurious_rate:
            # Teacher noise is *systematic*, not white: for each category the
            # teacher has a pet directive it habitually tacks on (an LLM
            # style quirk).  Systematic noise survives k-NN averaging
            # downstream, which is what makes curation worth doing.
            if rng.random() < self.config.pet_bias:
                aspects.add(_pet_aspect(category))
            else:
                pool = [a for a in aspect_names() if a not in aspects]
                aspects.add(str(pool[int(rng.integers(len(pool)))]))

        if not aspects:
            prior = CATEGORIES.get(category)
            fallback = (
                max(prior.aspect_prior, key=prior.aspect_prior.get)
                if prior
                else "depth"
            )
            aspects.add(fallback)
        return render_complement(aspects, salt=str(rng_key))


@dataclass(frozen=True)
class CritiqueResult:
    """The critic's verdict, mirroring Figure 5's JSON output."""

    is_correct: bool
    reason: str


class PairCritic:
    """``IsCorrectPair`` of Algorithm 1 — the Figure-5 critic."""

    def __init__(self, critic: SimulatedLLM, max_ape_words: int = 45):
        self.critic = critic
        self.max_ape_words = max_ape_words

    def critique(self, prompt_text: str, ape_text: str) -> CritiqueResult:
        """Apply the five Figure-5 criteria.

        The critic perceives the prompt through its own cue sensitivity, so
        it is imperfect in both directions — the reason curated data is
        *better* but not perfect, which Table 5 depends on.
        """
        ape_aspects = parse_directives(ape_text)

        # Criterion 5: empty or degenerate supplement.
        if not ape_text.strip():
            return CritiqueResult(False, "empty APE")
        # Criterion 3: the APE answers instead of supplementing (it reads
        # like a response: no recognisable directive, substantial length).
        if not ape_aspects:
            return CritiqueResult(False, "APE answers the prompt instead of supplementing it")
        # Criterion 4: excessive demands.
        if len(ape_aspects) > MAX_DIRECTIVES:
            return CritiqueResult(False, "APE makes excessive demands")
        if len(textproc.words(ape_text)) > self.max_ape_words:
            return CritiqueResult(False, "APE is too long to be a supplement")

        perceived_needs = self.critic.infer_needs(prompt_text)
        # Criterion 1: conflict with the prompt's visible intention.
        for cued, demanded in _CONFLICTS:
            if cued in perceived_needs and demanded in ape_aspects:
                return CritiqueResult(
                    False, f"APE demands {demanded} but the prompt asks for {cued}"
                )
        # Criterion 2: superfluous additions beyond the visible needs.  Any
        # directive the critic cannot ground in the prompt counts — this is
        # the criterion that catches the teacher's systematic pet aspects.
        superfluous = ape_aspects - perceived_needs
        if superfluous:
            return CritiqueResult(
                False, f"APE adds superfluous directives: {sorted(superfluous)}"
            )
        return CritiqueResult(True, "valid supplement")

    def critique_batch(
        self, pairs: list[tuple[str, str]]
    ) -> list[CritiqueResult]:
        """Verdicts for many ``(prompt, ape)`` pairs in one call.

        Each verdict is a pure function of its own pair (the critic's cue
        perception is content-keyed), so the result is bit-identical to
        ``[critique(p, a) for p, a in pairs]`` — the repo-wide batching
        contract.
        """
        return [self.critique(prompt, ape) for prompt, ape in pairs]


#: The flat ``PairGenerator.__init__`` kwargs removed with the
#: elastic-fleet API redesign; each raises a :class:`TypeError` naming
#: the :class:`GenerationConfig` field that replaced it.
_REMOVED_KWARGS = tuple(f.name for f in fields(GenerationConfig))


class PairGenerator:
    """Algorithm 1 end to end: generate, critique, regenerate.

    Configure with a :class:`GenerationConfig` — or pass a whole
    :class:`~repro.pipeline.config.PipelineConfig`, whose ``generation``
    section is used.  Those are the only construction paths; the
    pre-config flat loop kwargs (``max_rounds=...`` etc.) raise a
    :class:`TypeError` naming the config field to use.
    """

    def __init__(
        self,
        teacher: SimulatedLLM | None = None,
        critic: SimulatedLLM | None = None,
        golden: GoldenData | None = None,
        config=None,
        **rejected,
    ):
        if rejected:
            flat = sorted(set(rejected) & set(_REMOVED_KWARGS))
            if flat:
                raise TypeError(
                    f"PairGenerator() no longer accepts flat kwargs {flat}; "
                    "pass the matching GenerationConfig field instead — "
                    "config=PipelineConfig(generation=GenerationConfig(...))"
                )
            raise TypeError(
                f"PairGenerator() got unexpected keyword arguments {sorted(rejected)}"
            )
        if config is not None and hasattr(config, "generation"):
            config = config.generation
        self.config = config or GenerationConfig()
        self.config.validate()
        self.teacher = teacher or SimulatedLLM("teacher-gpt-4")
        self.critic_model = critic or SimulatedLLM("teacher-gpt-4", seed=1)
        self.golden = golden or build_golden_data()
        self.generator = FewShotGenerator(self.teacher, self.golden, self.config)
        self.critic = PairCritic(self.critic_model)

    def build_pair(
        self,
        selected: SelectedPrompt,
        critique: Callable[[str, str], CritiqueResult] | None = None,
    ) -> PromptPair | None:
        """Run the generate/critique/regenerate loop for one prompt.

        Returns ``None`` when curation is on and no draft passed within
        ``max_rounds`` regenerations (Algorithm 1 loops forever; a cap plus
        drop keeps the pipeline total and is recorded in the dataset stats).

        ``critique`` overrides the critic call (default:
        ``self.critic.critique``) — the pipeline runner injects a
        fault-aware wrapper here so a grader outage can skip the pair
        without changing the loop itself.
        """
        check = critique if critique is not None else self.critic.critique
        prompt = selected.prompt
        category = selected.predicted_category
        draft = self.generator.generate(prompt.text, category, salt=0)
        rounds = 0
        if self.config.curate:
            verdict = check(prompt.text, draft)
            while not verdict.is_correct and rounds < self.config.max_rounds:
                rounds += 1
                draft = self.generator.generate(prompt.text, category, salt=rounds)
                verdict = check(prompt.text, draft)
            if not verdict.is_correct:
                return None
        return PromptPair(
            prompt_uid=prompt.uid,
            prompt_text=prompt.text,
            complement_text=draft,
            category=category,
            true_category=prompt.category,
            true_needs=frozenset(prompt.needs),
            regeneration_rounds=rounds,
        )

    def build_dataset(self, selected: list[SelectedPrompt]) -> PromptPairDataset:
        """Build the full complementary dataset from collected prompts."""
        pairs = []
        dropped = 0
        for item in selected:
            pair = self.build_pair(item)
            if pair is None:
                dropped += 1
            else:
                pairs.append(pair)
        return PromptPairDataset(
            pairs=pairs,
            curated=self.config.curate,
            n_dropped=dropped,
        )
