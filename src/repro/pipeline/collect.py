"""Prompt collection pipeline (paper §3.1, Figure 3a).

Three stages over a raw prompt corpus:

1. **Deduplication** — embed every prompt, cluster near-duplicates through
   the HNSW index, keep a small number of representatives per group.
2. **Quality filtering** — grade each survivor with the LLM+fluency scorer
   and drop entries below threshold.
3. **Classification** — assign each survivor a category with the trained
   classifier (predicted categories drive the generation stage's few-shot
   exemplar choice, so classifier errors propagate realistically).

An optional k-center-greedy diversity stage caps the output size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.classify.model import CategoryClassifier
from repro.cluster.dedup import deduplicate
from repro.cluster.kcenter import k_center_greedy
from repro.embedding.model import EmbeddingModel
from repro.errors import ConfigError
from repro.llm.engine import SimulatedLLM
from repro.pipeline.select import QualityScorer
from repro.world.prompts import SyntheticPrompt

__all__ = ["CollectionConfig", "SelectedPrompt", "CollectionResult", "PromptCollector"]


@dataclass(frozen=True)
class CollectionConfig:
    """Knobs for the three collection stages.

    ``dedup_shards`` / ``dedup_backend`` pick the ANN index behind the
    dedup stage (see :func:`~repro.cluster.dedup.deduplicate`): the
    default is the monolithic HNSW graph; ``dedup_shards > 1`` (or
    ``dedup_backend="sharded"``) routes through
    :class:`~repro.ann.sharded.ShardedHnswIndex`, whose 1-shard graph is
    bit-identical to the monolithic one.
    """

    dedup_threshold: float = 0.88
    dedup_neighbors: int = 8
    keep_per_group: int = 1
    quality_threshold: float = 0.62
    target_size: int | None = None
    skip_dedup: bool = False
    skip_quality_filter: bool = False
    dedup_shards: int = 1
    dedup_backend: str = "auto"

    def validate(self) -> None:
        if not 0.0 < self.dedup_threshold <= 1.0:
            raise ConfigError(f"dedup_threshold must be in (0, 1]: {self.dedup_threshold}")
        if not 0.0 <= self.quality_threshold <= 1.0:
            raise ConfigError(
                f"quality_threshold must be in [0, 1]: {self.quality_threshold}"
            )
        if self.target_size is not None and self.target_size < 1:
            raise ConfigError(f"target_size must be >= 1: {self.target_size}")
        if self.dedup_shards < 1:
            raise ConfigError(f"dedup_shards must be >= 1: {self.dedup_shards}")
        if self.dedup_backend not in ("auto", "hnsw", "sharded"):
            raise ConfigError(
                f"dedup_backend must be auto/hnsw/sharded: {self.dedup_backend!r}"
            )

    def as_dict(self) -> dict:
        """JSON-safe dict of every field, in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CollectionConfig":
        """Inverse of :meth:`as_dict`: ``from_dict(c.as_dict()) == c``."""
        return cls(**data)


@dataclass(frozen=True)
class SelectedPrompt:
    """A prompt that survived collection, with its *predicted* category."""

    prompt: SyntheticPrompt
    predicted_category: str
    quality: float

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order."""
        return {
            "prompt": self.prompt.as_dict(),
            "predicted_category": self.predicted_category,
            "quality": self.quality,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SelectedPrompt":
        """Inverse of :meth:`as_dict`: ``from_dict(s.as_dict()) == s``."""
        return cls(
            prompt=SyntheticPrompt.from_dict(data["prompt"]),
            predicted_category=data["predicted_category"],
            quality=float(data["quality"]),
        )


@dataclass
class CollectionResult:
    """Survivors plus per-stage accounting."""

    selected: list[SelectedPrompt]
    n_input: int
    n_after_dedup: int
    n_after_quality: int
    n_final: int
    stats: dict = field(default_factory=dict)

    @property
    def junk_leak_rate(self) -> float:
        """Fraction of final survivors that are ground-truth junk."""
        if not self.selected:
            return 0.0
        junk = sum(1 for s in self.selected if s.prompt.is_junk)
        return junk / len(self.selected)

    #: ``stats`` keys holding uid sets (serialised as sorted lists).
    _SET_STATS = ("dedup_removed_uids", "quality_removed_uids")

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order (uid sets become sorted
        lists), mirroring :meth:`ServeResponse.as_dict`."""
        stats = {}
        for key in sorted(self.stats):
            value = self.stats[key]
            stats[key] = sorted(value) if isinstance(value, (set, frozenset)) else value
        return {
            "selected": [s.as_dict() for s in self.selected],
            "n_input": self.n_input,
            "n_after_dedup": self.n_after_dedup,
            "n_after_quality": self.n_after_quality,
            "n_final": self.n_final,
            "stats": stats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CollectionResult":
        """Inverse of :meth:`as_dict` (uid-set stats are restored as sets):
        ``CollectionResult.from_dict(r.as_dict()) == r``."""
        stats = dict(data["stats"])
        for key in cls._SET_STATS:
            if key in stats:
                stats[key] = {int(uid) for uid in stats[key]}
        return cls(
            selected=[SelectedPrompt.from_dict(s) for s in data["selected"]],
            n_input=int(data["n_input"]),
            n_after_dedup=int(data["n_after_dedup"]),
            n_after_quality=int(data["n_after_quality"]),
            n_final=int(data["n_final"]),
            stats=stats,
        )


#: The flat ``PromptCollector.__init__`` kwargs removed with the
#: elastic-fleet API redesign; each raises a :class:`TypeError` naming
#: the :class:`CollectionConfig` field that replaced it.
_REMOVED_KWARGS = tuple(f.name for f in fields(CollectionConfig))


class PromptCollector:
    """Runs the full Figure-3a pipeline over a raw corpus.

    Configure with a :class:`CollectionConfig` — or pass a whole
    :class:`~repro.pipeline.config.PipelineConfig`, whose ``collection``
    section (and ``seed``, unless given explicitly) is used.  Those are
    the only construction paths; the pre-config flat stage kwargs
    (``dedup_threshold=...`` etc.) raise a :class:`TypeError` naming the
    config field to use.
    """

    def __init__(
        self,
        embedder: EmbeddingModel | None = None,
        grader: SimulatedLLM | None = None,
        classifier: CategoryClassifier | None = None,
        config=None,
        seed: int | None = None,
        **rejected,
    ):
        if rejected:
            flat = sorted(set(rejected) & set(_REMOVED_KWARGS))
            if flat:
                raise TypeError(
                    f"PromptCollector() no longer accepts flat kwargs {flat}; "
                    "pass the matching CollectionConfig field instead — "
                    "config=PipelineConfig(collection=CollectionConfig(...))"
                )
            raise TypeError(
                f"PromptCollector() got unexpected keyword arguments {sorted(rejected)}"
            )
        # A PipelineConfig carries the collection section plus the run seed
        # (duck-typed to keep this module import-cycle free).
        if config is not None and hasattr(config, "collection"):
            if seed is None:
                seed = config.seed
            config = config.collection
        self.embedder = embedder or EmbeddingModel()
        self.grader = grader or SimulatedLLM("baichuan-13b")
        self.classifier = classifier
        self.config = config or CollectionConfig()
        self.config.validate()
        self.seed = int(seed if seed is not None else 0)

    def _ensure_classifier(self) -> CategoryClassifier:
        if self.classifier is None:
            self.classifier = CategoryClassifier().fit_synthetic(seed=self.seed + 17)
        return self.classifier

    def collect(self, corpus: list[SyntheticPrompt]) -> CollectionResult:
        """Run dedup → quality filter → classify (→ optional diversity cap)."""
        n_input = len(corpus)
        if n_input == 0:
            return CollectionResult([], 0, 0, 0, 0)

        # Stage 1: deduplication over embeddings.
        if self.config.skip_dedup:
            survivors = list(corpus)
        else:
            embeddings = self.embedder.embed_batch([p.text for p in corpus])
            result = deduplicate(
                embeddings,
                threshold=self.config.dedup_threshold,
                k_neighbors=self.config.dedup_neighbors,
                keep_per_group=self.config.keep_per_group,
                seed=self.seed,
                n_shards=self.config.dedup_shards,
                backend=self.config.dedup_backend,
            )
            survivors = [corpus[i] for i in result.kept]
        n_after_dedup = len(survivors)

        # Stage 2: quality filtering (batched; bit-identical to the loop).
        if self.config.skip_quality_filter:
            graded = [(p, 1.0) for p in survivors]
        else:
            texts = [p.text for p in survivors]
            scorer = QualityScorer(grader=self.grader).fit(texts)
            graded = [
                (p, score)
                for p, score in zip(survivors, scorer.score_batch(texts), strict=True)
                if score >= self.config.quality_threshold
            ]
        n_after_quality = len(graded)

        # Stage 3: classification.
        classifier = self._ensure_classifier()
        texts = [p.text for p, _ in graded]
        categories = classifier.predict_batch(texts)
        selected = [
            SelectedPrompt(prompt=p, predicted_category=cat, quality=score)
            for (p, score), cat in zip(graded, categories, strict=True)
        ]

        # Optional diversity cap via k-center greedy.
        if self.config.target_size is not None and len(selected) > self.config.target_size:
            embeddings = self.embedder.embed_batch([s.prompt.text for s in selected])
            chosen = k_center_greedy(embeddings, self.config.target_size)
            selected = [selected[i] for i in sorted(chosen)]

        survivor_uids = {p.uid for p, _ in graded}
        return CollectionResult(
            selected=selected,
            n_input=n_input,
            n_after_dedup=n_after_dedup,
            n_after_quality=n_after_quality,
            n_final=len(selected),
            stats={
                "removed_by_dedup": n_input - n_after_dedup,
                "removed_by_quality": n_after_dedup - n_after_quality,
                "dedup_removed_uids": {p.uid for p in corpus}
                - {p.uid for p in survivors},
                "quality_removed_uids": {p.uid for p in survivors}
                - survivor_uids,
            },
        )
