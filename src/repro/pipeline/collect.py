"""Prompt collection pipeline (paper §3.1, Figure 3a).

Three stages over a raw prompt corpus:

1. **Deduplication** — embed every prompt, cluster near-duplicates through
   the HNSW index, keep a small number of representatives per group.
2. **Quality filtering** — grade each survivor with the LLM+fluency scorer
   and drop entries below threshold.
3. **Classification** — assign each survivor a category with the trained
   classifier (predicted categories drive the generation stage's few-shot
   exemplar choice, so classifier errors propagate realistically).

An optional k-center-greedy diversity stage caps the output size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.model import CategoryClassifier
from repro.cluster.dedup import deduplicate
from repro.cluster.kcenter import k_center_greedy
from repro.embedding.model import EmbeddingModel
from repro.errors import ConfigError
from repro.llm.engine import SimulatedLLM
from repro.pipeline.select import QualityScorer
from repro.world.prompts import SyntheticPrompt

__all__ = ["CollectionConfig", "SelectedPrompt", "CollectionResult", "PromptCollector"]


@dataclass(frozen=True)
class CollectionConfig:
    """Knobs for the three collection stages."""

    dedup_threshold: float = 0.88
    dedup_neighbors: int = 8
    keep_per_group: int = 1
    quality_threshold: float = 0.62
    target_size: int | None = None
    skip_dedup: bool = False
    skip_quality_filter: bool = False

    def validate(self) -> None:
        if not 0.0 < self.dedup_threshold <= 1.0:
            raise ConfigError(f"dedup_threshold must be in (0, 1]: {self.dedup_threshold}")
        if not 0.0 <= self.quality_threshold <= 1.0:
            raise ConfigError(
                f"quality_threshold must be in [0, 1]: {self.quality_threshold}"
            )
        if self.target_size is not None and self.target_size < 1:
            raise ConfigError(f"target_size must be >= 1: {self.target_size}")


@dataclass(frozen=True)
class SelectedPrompt:
    """A prompt that survived collection, with its *predicted* category."""

    prompt: SyntheticPrompt
    predicted_category: str
    quality: float


@dataclass
class CollectionResult:
    """Survivors plus per-stage accounting."""

    selected: list[SelectedPrompt]
    n_input: int
    n_after_dedup: int
    n_after_quality: int
    n_final: int
    stats: dict = field(default_factory=dict)

    @property
    def junk_leak_rate(self) -> float:
        """Fraction of final survivors that are ground-truth junk."""
        if not self.selected:
            return 0.0
        junk = sum(1 for s in self.selected if s.prompt.is_junk)
        return junk / len(self.selected)


class PromptCollector:
    """Runs the full Figure-3a pipeline over a raw corpus."""

    def __init__(
        self,
        embedder: EmbeddingModel | None = None,
        grader: SimulatedLLM | None = None,
        classifier: CategoryClassifier | None = None,
        config: CollectionConfig | None = None,
        seed: int = 0,
    ):
        self.embedder = embedder or EmbeddingModel()
        self.grader = grader or SimulatedLLM("baichuan-13b")
        self.classifier = classifier
        self.config = config or CollectionConfig()
        self.config.validate()
        self.seed = int(seed)

    def _ensure_classifier(self) -> CategoryClassifier:
        if self.classifier is None:
            self.classifier = CategoryClassifier().fit_synthetic(seed=self.seed + 17)
        return self.classifier

    def collect(self, corpus: list[SyntheticPrompt]) -> CollectionResult:
        """Run dedup → quality filter → classify (→ optional diversity cap)."""
        n_input = len(corpus)
        if n_input == 0:
            return CollectionResult([], 0, 0, 0, 0)

        # Stage 1: deduplication over embeddings.
        if self.config.skip_dedup:
            survivors = list(corpus)
        else:
            embeddings = self.embedder.embed_batch([p.text for p in corpus])
            result = deduplicate(
                embeddings,
                threshold=self.config.dedup_threshold,
                k_neighbors=self.config.dedup_neighbors,
                keep_per_group=self.config.keep_per_group,
                seed=self.seed,
            )
            survivors = [corpus[i] for i in result.kept]
        n_after_dedup = len(survivors)

        # Stage 2: quality filtering.
        if self.config.skip_quality_filter:
            graded = [(p, 1.0) for p in survivors]
        else:
            scorer = QualityScorer(grader=self.grader).fit([p.text for p in survivors])
            graded = [
                (p, score)
                for p in survivors
                if (score := scorer.score(p.text)) >= self.config.quality_threshold
            ]
        n_after_quality = len(graded)

        # Stage 3: classification.
        classifier = self._ensure_classifier()
        texts = [p.text for p, _ in graded]
        categories = classifier.predict_batch(texts)
        selected = [
            SelectedPrompt(prompt=p, predicted_category=cat, quality=score)
            for (p, score), cat in zip(graded, categories, strict=True)
        ]

        # Optional diversity cap via k-center greedy.
        if self.config.target_size is not None and len(selected) > self.config.target_size:
            embeddings = self.embedder.embed_batch([s.prompt.text for s in selected])
            chosen = k_center_greedy(embeddings, self.config.target_size)
            selected = [selected[i] for i in sorted(chosen)]

        survivor_uids = {p.uid for p, _ in graded}
        return CollectionResult(
            selected=selected,
            n_input=n_input,
            n_after_dedup=n_after_dedup,
            n_after_quality=n_after_quality,
            n_final=len(selected),
            stats={
                "removed_by_dedup": n_input - n_after_dedup,
                "removed_by_quality": n_after_dedup - n_after_quality,
                "dedup_removed_uids": {p.uid for p in corpus}
                - {p.uid for p in survivors},
                "quality_removed_uids": {p.uid for p in survivors}
                - survivor_uids,
            },
        )
