"""The prompt-complementary dataset container (paper §3.3, Figure 6)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.io import dump_jsonl, load_jsonl
from repro.world.aspects import parse_directives

__all__ = ["PromptPair", "PromptPairDataset"]


@dataclass(frozen=True)
class PromptPair:
    """One (prompt, complementary prompt) training pair.

    ``true_needs`` / ``true_category`` carry the generator's ground truth
    for *evaluation only* — training consumers read just the two texts and
    the predicted category, like the paper's SFT stage would.
    """

    prompt_uid: int
    prompt_text: str
    complement_text: str
    category: str
    true_category: str
    true_needs: frozenset[str]
    regeneration_rounds: int = 0

    @property
    def complement_aspects(self) -> frozenset[str]:
        return frozenset(parse_directives(self.complement_text))

    @property
    def label_jaccard(self) -> float:
        """Overlap between the complement's aspects and the true needs."""
        union = self.complement_aspects | self.true_needs
        if not union:
            return 1.0
        return len(self.complement_aspects & self.true_needs) / len(union)

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order (``true_needs`` becomes a
        sorted list), mirroring :meth:`ServeResponse.as_dict`."""
        return {
            "prompt_uid": self.prompt_uid,
            "prompt_text": self.prompt_text,
            "complement_text": self.complement_text,
            "category": self.category,
            "true_category": self.true_category,
            "true_needs": sorted(self.true_needs),
            "regeneration_rounds": self.regeneration_rounds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PromptPair":
        """Inverse of :meth:`as_dict`: ``from_dict(p.as_dict()) == p``."""
        return cls(
            prompt_uid=int(data["prompt_uid"]),
            prompt_text=data["prompt_text"],
            complement_text=data["complement_text"],
            category=data["category"],
            true_category=data["true_category"],
            true_needs=frozenset(data["true_needs"]),
            regeneration_rounds=int(data.get("regeneration_rounds", 0)),
        )


@dataclass
class PromptPairDataset:
    """An ordered collection of pairs plus provenance stats."""

    pairs: list[PromptPair] = field(default_factory=list)
    curated: bool = True
    n_dropped: int = 0

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def category_distribution(self) -> Counter[str]:
        """Pairs per (predicted) category — the Figure 6 histogram."""
        return Counter(p.category for p in self.pairs)

    def mean_label_quality(self) -> float:
        """Average label Jaccard — what curation is supposed to raise."""
        if not self.pairs:
            return 0.0
        return sum(p.label_jaccard for p in self.pairs) / len(self.pairs)

    def training_texts(self) -> list[tuple[str, str]]:
        """(prompt, complement) text pairs — the SFT trainer's view."""
        return [(p.prompt_text, p.complement_text) for p in self.pairs]

    def split(self, train_fraction: float = 0.9) -> tuple["PromptPairDataset", "PromptPairDataset"]:
        """Deterministic prefix/suffix split (the corpus is pre-shuffled)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        cut = int(len(self.pairs) * train_fraction)
        return (
            PromptPairDataset(self.pairs[:cut], self.curated, self.n_dropped),
            PromptPairDataset(self.pairs[cut:], self.curated, 0),
        )

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order, mirroring
        :meth:`GatewayStats.as_dict`."""
        return {
            "pairs": [p.as_dict() for p in self.pairs],
            "curated": self.curated,
            "n_dropped": self.n_dropped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PromptPairDataset":
        """Inverse of :meth:`as_dict`: ``from_dict(d.as_dict()) == d``."""
        return cls(
            pairs=[PromptPair.from_dict(p) for p in data["pairs"]],
            curated=bool(data["curated"]),
            n_dropped=int(data["n_dropped"]),
        )

    def save(self, path: str | Path) -> int:
        return dump_jsonl(self.pairs, path)

    @classmethod
    def load(cls, path: str | Path, curated: bool = True) -> "PromptPairDataset":
        pairs = [
            PromptPair(
                prompt_uid=int(rec["prompt_uid"]),
                prompt_text=rec["prompt_text"],
                complement_text=rec["complement_text"],
                category=rec["category"],
                true_category=rec["true_category"],
                true_needs=frozenset(rec["true_needs"]),
                regeneration_rounds=int(rec.get("regeneration_rounds", 0)),
            )
            for rec in load_jsonl(path)
        ]
        return cls(pairs=pairs, curated=curated)
