"""Failure modelling and containment primitives for the serving stack.

The paper sells PAS as *plug-and-play* (§3.4, Figure 1a): the system sits
in front of a target LLM and must never cost the user their answer — the
raw prompt is always a valid fallback.  Exercising that promise requires
failures to exist, so this module provides three deterministic pieces:

* :class:`FaultPlan` — a seedable description of what goes wrong and when:
  per-stage failure rates (completion attempts, augmentation), latency
  spikes measured in logical ticks, and per-model outage windows on the
  logical clock.  Every decision is a pure function of ``(seed, stage,
  key, attempt)`` via :func:`~repro.utils.rng.stable_hash`, so chaos runs
  are bit-reproducible and independent of call order.
* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter and an optional per-request deadline budget (in logical ticks)
  that attempts *and* backoff pauses must fit inside.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine on the logical clock, used per target model by the gateway to
  fail fast while a backend is misbehaving.

Nothing here sleeps or reads a wall clock: "time" is the repo's logical
clock (one tick per request), the same convention the micro-batcher and
rate limiter use, so every transition is replayable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.errors import AugmentationError, ConfigError
from repro.utils.rng import stable_hash

__all__ = [
    "OutageWindow",
    "FaultPlan",
    "NO_FAULTS",
    "RetryPolicy",
    "CircuitBreaker",
    "augment_fault",
]


def _uniform(*material: str) -> float:
    """One deterministic U[0, 1) draw keyed by ``material``."""
    rng = np.random.default_rng(stable_hash("␞".join(material)))
    return float(rng.random())


def augment_fault(prompt_text: str) -> AugmentationError:
    """The canonical injected-augmentation-failure error for one prompt.

    Both :meth:`~repro.core.pas.PasModel.augment` and the gateway's batch
    planner raise/record exactly this error, so scalar and batched paths
    stay bit-identical down to the error string.
    """
    return AugmentationError(f"injected augmentation fault for prompt {prompt_text!r}")


@dataclass(frozen=True)
class OutageWindow:
    """One model's hard outage over ``[start, end)`` on the logical clock."""

    model: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(
                f"outage window must satisfy start < end, got [{self.start}, {self.end})"
            )

    def covers(self, model: str, tick: int) -> bool:
        return self.model == model and self.start <= tick < self.end

    def as_dict(self) -> dict:
        """JSON-safe dict: ``OutageWindow.from_dict(w.as_dict()) == w``."""
        return {"model": self.model, "start": self.start, "end": self.end}

    @classmethod
    def from_dict(cls, data: dict) -> "OutageWindow":
        return cls(model=data["model"], start=int(data["start"]), end=int(data["end"]))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable description of injected faults.

    Parameters
    ----------
    seed:
        Salt for every draw; two plans with equal rates but different
        seeds fail different (request, attempt) pairs.
    completion_failure_rate:
        Probability that one completion *attempt* fails transiently.
    augment_failure_rate:
        Probability that augmenting one prompt fails (per prompt, not per
        attempt — augmentation is a pure function of the prompt, so its
        injected failure is too).
    latency_spike_rate:
        Probability that one completion attempt costs an extra
        ``latency_spike_ticks`` of logical time (only observable through a
        :class:`RetryPolicy` deadline budget).
    latency_spike_ticks:
        Logical cost of one spike.
    outages:
        Hard per-model outage windows on the logical clock; every attempt
        against a model inside its window fails.
    """

    seed: int = 0
    completion_failure_rate: float = 0.0
    augment_failure_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_ticks: int = 4
    outages: tuple[OutageWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in ("completion_failure_rate", "augment_failure_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {rate}")
        if self.latency_spike_ticks < 0:
            raise ConfigError(
                f"latency_spike_ticks must be >= 0, got {self.latency_spike_ticks}"
            )
        # Tolerate (and normalise) a list of windows.
        if not isinstance(self.outages, tuple):
            object.__setattr__(self, "outages", tuple(self.outages))

    def _draw(self, stage: str, *material: str) -> float:
        return _uniform("fault", str(self.seed), stage, *material)

    def attach_observer(self, observer) -> None:
        """Register ``observer(stage, key, detail)``, called once per fault
        this plan actually *injects* (never on clean draws).

        ``stage`` is ``"completion"`` / ``"augment"`` / ``"latency"`` /
        ``"outage"``; ``key`` identifies the victim (request key, prompt
        text, or model name); ``detail`` is the attempt index for per-attempt
        stages, the spike ticks for latency, and the tick for outages.  The
        gateway wires this to its event log.  Stored outside the dataclass
        fields (the plan stays frozen, equal, and hashable); one observer
        per plan — attaching again replaces it, ``None`` detaches.
        """
        object.__setattr__(self, "_observer", observer)

    def _notify(self, stage: str, key: str, detail: int | None) -> None:
        observer = getattr(self, "_observer", None)
        if observer is not None:
            observer(stage, key, detail)

    @property
    def is_noop(self) -> bool:
        """True when this plan can never inject anything."""
        return (
            self.completion_failure_rate == 0.0
            and self.augment_failure_rate == 0.0
            and self.latency_spike_rate == 0.0
            and not self.outages
        )

    def completion_fails(self, key: str, attempt: int) -> bool:
        """Does completion attempt ``attempt`` for ``key`` fail transiently?"""
        if self.completion_failure_rate <= 0.0:
            return False
        if self._draw("completion", key, str(attempt)) < self.completion_failure_rate:
            self._notify("completion", key, attempt)
            return True
        return False

    def augment_fails(self, prompt_text: str) -> bool:
        """Does augmenting this prompt fail?  (Per prompt, attempt-free.)"""
        if self.augment_failure_rate <= 0.0:
            return False
        if self._draw("augment", prompt_text) < self.augment_failure_rate:
            self._notify("augment", prompt_text, None)
            return True
        return False

    def latency_ticks(self, key: str, attempt: int) -> int:
        """Extra logical ticks this completion attempt costs (0 or a spike)."""
        if self.latency_spike_rate <= 0.0 or self.latency_spike_ticks == 0:
            return 0
        if self._draw("latency", key, str(attempt)) < self.latency_spike_rate:
            self._notify("latency", key, self.latency_spike_ticks)
            return self.latency_spike_ticks
        return 0

    def in_outage(self, model: str, tick: int) -> bool:
        """Is ``model`` hard-down at logical time ``tick``?"""
        if any(window.covers(model, tick) for window in self.outages):
            self._notify("outage", model, tick)
            return True
        return False

    def as_dict(self) -> dict:
        """JSON-safe dict: ``FaultPlan.from_dict(p.as_dict()) == p``.

        The attached observer (if any) is runtime wiring, not
        configuration, and is deliberately not serialized.
        """
        return {
            "seed": self.seed,
            "completion_failure_rate": self.completion_failure_rate,
            "augment_failure_rate": self.augment_failure_rate,
            "latency_spike_rate": self.latency_spike_rate,
            "latency_spike_ticks": self.latency_spike_ticks,
            "outages": [window.as_dict() for window in self.outages],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data["seed"]),
            completion_failure_rate=float(data["completion_failure_rate"]),
            augment_failure_rate=float(data["augment_failure_rate"]),
            latency_spike_rate=float(data["latency_spike_rate"]),
            latency_spike_ticks=int(data["latency_spike_ticks"]),
            outages=tuple(OutageWindow.from_dict(w) for w in data["outages"]),
        )


#: The no-op plan: injecting it anywhere changes nothing.
NO_FAULTS = FaultPlan()


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter and a deadline.

    ``backoff_ticks(key, attempt)`` grows as ``base_backoff * 2**attempt``
    capped at ``max_backoff``, stretched by a deterministic jitter factor
    in ``[1, 1 + jitter]`` drawn from ``(seed, key, attempt)`` — no shared
    RNG state, so concurrent requests can't perturb each other's pauses.

    ``deadline_ticks`` is a per-request budget of logical time: every
    attempt costs one tick (plus any injected latency spike) and every
    backoff pause costs its ticks; an attempt that no longer fits raises
    :class:`~repro.errors.DeadlineExceededError` instead of running.
    """

    max_retries: int = 3
    base_backoff: float = 1.0
    max_backoff: float = 8.0
    jitter: float = 0.25
    deadline_ticks: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff < 0 or self.max_backoff < self.base_backoff:
            raise ConfigError(
                "backoff bounds must satisfy 0 <= base_backoff <= max_backoff, "
                f"got base={self.base_backoff}, max={self.max_backoff}"
            )
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")
        if self.deadline_ticks is not None and self.deadline_ticks <= 0:
            raise ConfigError(
                f"deadline_ticks must be positive when set, got {self.deadline_ticks}"
            )

    def backoff_ticks(self, key: str, attempt: int) -> float:
        """Pause (in logical ticks) after failed attempt ``attempt``."""
        base = min(self.base_backoff * (2.0 ** attempt), self.max_backoff)
        if base == 0.0 or self.jitter == 0.0:
            return base
        stretch = 1.0 + self.jitter * _uniform("backoff", str(self.seed), key, str(attempt))
        return base * stretch

    def as_dict(self) -> dict:
        """JSON-safe dict: ``RetryPolicy.from_dict(p.as_dict()) == p``."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)


class CircuitBreaker:
    """Per-model circuit breaker on the logical clock.

    Closed is the healthy state.  ``failure_threshold`` *consecutive*
    failures open the circuit: requests are rejected without touching the
    backend until ``recovery_ticks`` have elapsed, at which point the next
    request is admitted as a half-open probe.  A successful probe closes
    the circuit; a failed one re-opens it and restarts the recovery timer.

    Transitions are appended to :attr:`transitions` as ``(tick, state)``
    pairs — with a seeded :class:`FaultPlan` driving the failures, the
    whole list is bit-reproducible across runs.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5, recovery_ticks: int = 16):
        if failure_threshold < 1:
            raise ConfigError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_ticks < 1:
            raise ConfigError(f"recovery_ticks must be >= 1, got {recovery_ticks}")
        self.failure_threshold = failure_threshold
        self.recovery_ticks = recovery_ticks
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: int | None = None
        self.trips = 0  #: number of closed/half-open -> open transitions
        self.transitions: list[tuple[int, str]] = []
        #: Optional ``observer(tick, state)`` called on every transition
        #: (the gateway wires this to its event log).
        self.observer = None

    def _transition(self, tick: int, state: str) -> None:
        self.state = state
        self.transitions.append((tick, state))
        if self.observer is not None:
            self.observer(tick, state)

    def allow(self, tick: int) -> bool:
        """May a request proceed at logical time ``tick``?

        While open, returns False until ``recovery_ticks`` have elapsed;
        the first call after that flips to half-open and admits the probe.
        """
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if tick - self.opened_at >= self.recovery_ticks:
                self._transition(tick, self.HALF_OPEN)
                return True
            return False
        return True

    def would_allow(self, tick: int) -> bool:
        """:meth:`allow` without the half-open transition — a pure peek.

        Routing layers use this to drop hard-open models out of a pool
        draw without consuming the recovery probe: the breaker only
        transitions when the gateway's real :meth:`allow` runs.
        """
        if self.state == self.OPEN:
            assert self.opened_at is not None
            return tick - self.opened_at >= self.recovery_ticks
        return True

    def record_success(self, tick: int) -> None:
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self._transition(tick, self.CLOSED)
            self.opened_at = None

    def record_failure(self, tick: int) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self.trips += 1
            self.opened_at = tick
            self._transition(tick, self.OPEN)
        elif self.state == self.CLOSED and self.consecutive_failures >= self.failure_threshold:
            self.trips += 1
            self.opened_at = tick
            self._transition(tick, self.OPEN)
