"""Signed feature hashing (the "hashing trick") for sparse text features.

Each feature string is hashed twice: once to pick a bucket, once to pick a
sign.  The signed variant keeps the inner product an unbiased estimator of
the true sparse inner product, which is what makes hashed embeddings usable
for cosine-similarity dedup.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.rng import stable_hash

__all__ = ["bucket_sign", "hash_features", "hash_features_batch"]


def bucket_sign(feature: str, dim: int) -> tuple[int, float]:
    """The (bucket, sign) a feature string hashes to under ``dim``.

    The sign comes from a high bit so it is independent of the bucket
    (low bits select the bucket via ``h % dim``; reusing a low bit would
    correlate sign with bucket and break cancellation).
    """
    h = stable_hash(feature)
    return h % dim, 1.0 if (h >> 47) & 1 else -1.0


def hash_features(
    features: Iterable[str],
    dim: int,
    weights: Iterable[float] | None = None,
) -> np.ndarray:
    """Project weighted string features into a dense ``dim`` vector.

    Parameters
    ----------
    features:
        Feature strings (e.g. character n-grams).
    dim:
        Output dimensionality; must be positive.
    weights:
        Optional per-feature weights (defaults to 1.0 each).
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    vec = np.zeros(dim, dtype=np.float64)
    if weights is None:
        for feat in features:
            bucket, sign = bucket_sign(feat, dim)
            vec[bucket] += sign
    else:
        for feat, w in zip(features, weights, strict=True):
            bucket, sign = bucket_sign(feat, dim)
            vec[bucket] += sign * w
    return vec


def hash_features_batch(
    feature_lists: Sequence[Sequence[str]],
    dim: int,
    weight_lists: Sequence[Sequence[float]],
    cache: dict[str, tuple[int, float]] | None = None,
) -> np.ndarray:
    """Project many weighted feature lists into an ``(n, dim)`` matrix.

    The whole batch is scattered with a single :func:`np.add.at` call over
    (row, bucket, signed weight) triplets.  Triplets are emitted in feature
    order, and ``np.add.at`` applies repeated indices in element order, so
    every row is bit-identical to :func:`hash_features` on the same
    features.

    Parameters
    ----------
    feature_lists:
        One feature-string list per output row.
    dim:
        Output dimensionality; must be positive.
    weight_lists:
        Per-feature weights, one list per row (lengths must match).
    cache:
        Optional ``feature -> (bucket, sign)`` memo shared across rows, so
        a feature repeated anywhere in the batch is hashed only once.
        Entries are specific to ``dim``; never share a cache across
        different dimensionalities.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    matrix = np.zeros((len(feature_lists), dim), dtype=np.float64)
    if cache is None:
        cache = {}
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for row, (features, weights) in enumerate(
        zip(feature_lists, weight_lists, strict=True)
    ):
        for feat, w in zip(features, weights, strict=True):
            memo = cache.get(feat)
            if memo is None:
                memo = bucket_sign(feat, dim)
                cache[feat] = memo
            rows.append(row)
            cols.append(memo[0])
            vals.append(memo[1] * w)
    if rows:
        np.add.at(
            matrix,
            (np.asarray(rows, dtype=np.intp), np.asarray(cols, dtype=np.intp)),
            np.asarray(vals, dtype=np.float64),
        )
    return matrix
