"""Signed feature hashing (the "hashing trick") for sparse text features.

Each feature string is hashed twice: once to pick a bucket, once to pick a
sign.  The signed variant keeps the inner product an unbiased estimator of
the true sparse inner product, which is what makes hashed embeddings usable
for cosine-similarity dedup.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.utils.rng import stable_hash

__all__ = ["hash_features"]


def hash_features(
    features: Iterable[str],
    dim: int,
    weights: Iterable[float] | None = None,
) -> np.ndarray:
    """Project weighted string features into a dense ``dim`` vector.

    Parameters
    ----------
    features:
        Feature strings (e.g. character n-grams).
    dim:
        Output dimensionality; must be positive.
    weights:
        Optional per-feature weights (defaults to 1.0 each).
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    vec = np.zeros(dim, dtype=np.float64)
    # The sign comes from a high bit so it is independent of the bucket
    # (low bits select the bucket via ``h % dim``; reusing a low bit would
    # correlate sign with bucket and break cancellation).
    if weights is None:
        for feat in features:
            h = stable_hash(feat)
            sign = 1.0 if (h >> 47) & 1 else -1.0
            vec[h % dim] += sign
    else:
        for feat, w in zip(features, weights, strict=True):
            h = stable_hash(feat)
            sign = 1.0 if (h >> 47) & 1 else -1.0
            vec[h % dim] += sign * w
    return vec
