"""The embedding model used throughout the pipeline.

The paper embeds prompts with a SimCSE-style bge model before HNSW
clustering (§3.1).  Offline we substitute a deterministic bag-of-subwords
encoder: character 3/4-grams plus word unigrams/bigrams, signed-hashed into a
fixed-dimensional space and L2-normalised.  Texts sharing surface phrasing
land close in cosine space — exactly the property dedup and k-NN SFT need.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.embedding.hashing import bucket_sign, hash_features
from repro.utils import textproc

__all__ = ["EmbeddingModel"]


class EmbeddingModel:
    """Hashed n-gram sentence encoder.

    Parameters
    ----------
    dim:
        Embedding dimensionality (default 256).
    char_orders:
        Character n-gram orders to extract.
    word_orders:
        Word n-gram orders to extract.
    word_weight:
        Relative weight of word-level features versus character features;
        word n-grams carry more topical signal, char n-grams more robustness
        to small edits.
    """

    def __init__(
        self,
        dim: int = 256,
        char_orders: Sequence[int] = (3, 4),
        word_orders: Sequence[int] = (1, 2),
        word_weight: float = 2.0,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not char_orders and not word_orders:
            raise ValueError("at least one n-gram order is required")
        self.dim = dim
        self.char_orders = tuple(char_orders)
        self.word_orders = tuple(word_orders)
        self.word_weight = float(word_weight)

    def _features(self, text: str) -> tuple[list[str], list[float]]:
        feats: list[str] = []
        weights: list[float] = []
        for n in self.char_orders:
            for gram in textproc.char_ngrams(text, n):
                feats.append(f"c{n}|{gram}")
                weights.append(1.0)
        toks = textproc.words(text)
        for n in self.word_orders:
            for gram in textproc.word_ngrams(toks, n):
                feats.append(f"w{n}|{' '.join(gram)}")
                weights.append(self.word_weight)
        return feats, weights

    def embed(self, text: str) -> np.ndarray:
        """Embed a single text; zero-vector inputs embed to the zero vector."""
        feats, weights = self._features(text)
        vec = hash_features(feats, self.dim, weights)
        norm = float(np.linalg.norm(vec))
        if norm > 1e-12:
            vec /= norm
        return vec

    def embed_cached(self, text: str, cache) -> np.ndarray:
        """Embed through a memo cache (any ``get``/``put`` mapping, e.g.
        :class:`~repro.serve.cache.LruCache`).

        Embedding is a pure function of the text, so a cached vector is
        bit-identical to recomputation — memoisation never changes
        results, only skips the hashing pass.  On a hit the vector is
        returned as stored (``get`` refreshes recency); on a miss it is
        computed and ``put``.  This is the lower tier of the serving
        stack's two-tier cache: complement-LRU misses that re-augment a
        prompt reuse the embedding computed the first time around.
        """
        vec = cache.get(text)
        if vec is None:
            vec = self.embed(text)
            cache.put(text, vec)
        return vec

    def embed_batch(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts into an ``(n, dim)`` matrix.

        The whole batch is hashed with one :func:`hash_features_batch`
        scatter and a shared feature-hash memo, so a feature repeated
        anywhere in the batch pays for its blake2b digest once.  Each row
        is bit-identical to :meth:`embed` on the same text; an empty
        iterable returns an empty ``(0, dim)`` float matrix.
        """
        texts = list(texts)
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        # Gram-level (bucket, sign) memos, one namespace per n-gram order:
        # keying on the raw gram (not the "c3|…" feature string) means a
        # repeated gram skips the feature-string construction too, not just
        # the blake2b digest.
        char_memos: dict[int, dict[str, tuple[int, float]]] = {
            n: {} for n in self.char_orders
        }
        word_memos: dict[int, dict[tuple[str, ...], tuple[int, float]]] = {
            n: {} for n in self.word_orders
        }
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for row, text in enumerate(texts):
            # Triplets are emitted in the exact order _features() lists them
            # (char orders, then word orders), so the scatter below adds
            # colliding features in the same order embed() does.  The text
            # is normalised once and shared across every n-gram pass;
            # char_ngrams/words would each normalise it again.
            normalized = textproc.normalize(text)
            padded = f" {normalized} "
            for n in self.char_orders:
                memo = char_memos[n]
                for i in range(max(0, len(padded) - n + 1)):
                    gram = padded[i : i + n]
                    entry = memo.get(gram)
                    if entry is None:
                        entry = bucket_sign(f"c{n}|{gram}", self.dim)
                        memo[gram] = entry
                    rows.append(row)
                    cols.append(entry[0])
                    vals.append(entry[1])
            toks = textproc.words_normalized(normalized)
            for n in self.word_orders:
                memo = word_memos[n]
                for gram in textproc.word_ngrams(toks, n):
                    entry = memo.get(gram)
                    if entry is None:
                        entry = bucket_sign(f"w{n}|{' '.join(gram)}", self.dim)
                        memo[gram] = entry
                    rows.append(row)
                    cols.append(entry[0])
                    vals.append(entry[1] * self.word_weight)
        matrix = np.zeros((len(texts), self.dim), dtype=np.float64)
        if rows:
            # One unbuffered scatter for the whole batch; np.add.at applies
            # repeated (row, col) indices in element order, preserving the
            # scalar path's summation order bit for bit.
            np.add.at(
                matrix,
                (np.asarray(rows, dtype=np.intp), np.asarray(cols, dtype=np.intp)),
                np.asarray(vals, dtype=np.float64),
            )
        # Per-row 1-D norms (not one axis-wise reduction): np.linalg.norm
        # over an axis accumulates in a different order than the 1-D call
        # embed() makes, and the rows must match embed() bit for bit.
        for i in range(matrix.shape[0]):
            norm = float(np.linalg.norm(matrix[i]))
            if norm > 1e-12:
                matrix[i] /= norm
        return matrix
