"""The embedding model used throughout the pipeline.

The paper embeds prompts with a SimCSE-style bge model before HNSW
clustering (§3.1).  Offline we substitute a deterministic bag-of-subwords
encoder: character 3/4-grams plus word unigrams/bigrams, signed-hashed into a
fixed-dimensional space and L2-normalised.  Texts sharing surface phrasing
land close in cosine space — exactly the property dedup and k-NN SFT need.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.embedding.hashing import hash_features
from repro.utils import textproc

__all__ = ["EmbeddingModel"]


class EmbeddingModel:
    """Hashed n-gram sentence encoder.

    Parameters
    ----------
    dim:
        Embedding dimensionality (default 256).
    char_orders:
        Character n-gram orders to extract.
    word_orders:
        Word n-gram orders to extract.
    word_weight:
        Relative weight of word-level features versus character features;
        word n-grams carry more topical signal, char n-grams more robustness
        to small edits.
    """

    def __init__(
        self,
        dim: int = 256,
        char_orders: Sequence[int] = (3, 4),
        word_orders: Sequence[int] = (1, 2),
        word_weight: float = 2.0,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not char_orders and not word_orders:
            raise ValueError("at least one n-gram order is required")
        self.dim = dim
        self.char_orders = tuple(char_orders)
        self.word_orders = tuple(word_orders)
        self.word_weight = float(word_weight)

    def _features(self, text: str) -> tuple[list[str], list[float]]:
        feats: list[str] = []
        weights: list[float] = []
        for n in self.char_orders:
            for gram in textproc.char_ngrams(text, n):
                feats.append(f"c{n}|{gram}")
                weights.append(1.0)
        toks = textproc.words(text)
        for n in self.word_orders:
            for gram in textproc.word_ngrams(toks, n):
                feats.append(f"w{n}|{' '.join(gram)}")
                weights.append(self.word_weight)
        return feats, weights

    def embed(self, text: str) -> np.ndarray:
        """Embed a single text; zero-vector inputs embed to the zero vector."""
        feats, weights = self._features(text)
        vec = hash_features(feats, self.dim, weights)
        norm = float(np.linalg.norm(vec))
        if norm > 1e-12:
            vec /= norm
        return vec

    def embed_batch(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts into an ``(n, dim)`` matrix."""
        rows = [self.embed(t) for t in texts]
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(rows)
