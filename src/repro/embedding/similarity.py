"""Cosine-similarity helpers over dense embedding vectors."""

from __future__ import annotations

import numpy as np

__all__ = ["cosine", "cosine_matrix", "pairwise_cosine"]


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors; 0.0 if either has zero norm."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na < 1e-12 or nb < 1e-12:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def _normalize_rows(m: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(m, axis=1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    return m / norms


def cosine_matrix(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Cosine similarity of every query row against every corpus row."""
    q = _normalize_rows(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
    c = _normalize_rows(np.atleast_2d(np.asarray(corpus, dtype=np.float64)))
    return q @ c.T


def pairwise_cosine(matrix: np.ndarray) -> np.ndarray:
    """Symmetric all-pairs cosine similarity of the rows of ``matrix``."""
    n = _normalize_rows(np.atleast_2d(np.asarray(matrix, dtype=np.float64)))
    return n @ n.T
