"""Deterministic text embeddings (SimCSE/bge stand-in, paper §3.1)."""

from repro.embedding.model import EmbeddingModel
from repro.embedding.similarity import cosine, cosine_matrix, pairwise_cosine

__all__ = ["EmbeddingModel", "cosine", "cosine_matrix", "pairwise_cosine"]
