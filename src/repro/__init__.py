"""repro — reproduction of "PAS: Data-Efficient Plug-and-Play Prompt
Augmentation System" (ICDE 2025).

Public API quick tour::

    from repro import build_default_pas, PasEnhancedLLM, SimulatedLLM

    pas = build_default_pas(seed=0)                  # data pipeline + SFT
    target = SimulatedLLM("gpt-4-0613")
    enhanced = PasEnhancedLLM(pas=pas, target=target)
    print(enhanced.ask("How do I implement an lru cache in python?"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from __future__ import annotations

import numpy as np

from repro.core.pas import PasModel
from repro.core.plug import PasEnhancedLLM
from repro.llm.api import ChatClient
from repro.llm.engine import SimulatedLLM
from repro.pipeline.collect import CollectionConfig, PromptCollector
from repro.pipeline.config import PipelineConfig, RunnerConfig
from repro.pipeline.dataset import PromptPairDataset
from repro.pipeline.generate import GenerationConfig, PairGenerator
from repro.pipeline.runner import PipelineRunner
from repro.obs import Observability
from repro.resilience import CircuitBreaker, FaultPlan, RetryPolicy
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.world.prompts import CorpusConfig, PromptFactory

__all__ = [
    "PasModel",
    "PasEnhancedLLM",
    "ChatClient",
    "SimulatedLLM",
    "PromptCollector",
    "CollectionConfig",
    "PairGenerator",
    "GenerationConfig",
    "PipelineConfig",
    "RunnerConfig",
    "PipelineRunner",
    "PromptPairDataset",
    "PromptFactory",
    "PasGateway",
    "GatewayConfig",
    "Observability",
    "FaultPlan",
    "RetryPolicy",
    "CircuitBreaker",
    "CorpusConfig",
    "build_default_dataset",
    "build_default_pas",
]

__version__ = "0.1.0"


def build_default_dataset(
    n_prompts: int = 1200,
    seed: int = 0,
    curate: bool = True,
) -> PromptPairDataset:
    """Run the full data pipeline (§3.1 + §3.2) with default settings.

    Generates a raw synthetic corpus, collects (dedup → quality filter →
    classify), then generates complementary prompts with selection and
    regeneration (disable via ``curate=False`` for the Table 5 ablation).
    """
    factory = PromptFactory(rng=np.random.default_rng(seed))
    corpus = factory.make_corpus(CorpusConfig(n_prompts=n_prompts))
    collector = PromptCollector(seed=seed)
    collected = collector.collect(corpus)
    generator = PairGenerator(config=GenerationConfig(curate=curate))
    return generator.build_dataset(collected.selected)


def build_default_pas(
    n_prompts: int = 1200,
    seed: int = 0,
    base_model: str = "qwen2-7b-chat",
    curate: bool = True,
) -> PasModel:
    """End-to-end convenience: pipeline + SFT, returning a trained PAS."""
    dataset = build_default_dataset(n_prompts=n_prompts, seed=seed, curate=curate)
    return PasModel(base_model=base_model, seed=seed).train(dataset)
