"""Capability profiles for every named model in the paper's experiments.

A profile fixes four behavioural parameters of a simulated LLM:

* ``cue_sensitivity`` — probability of noticing a latent-need cue in the
  user prompt on its own (stronger models infer more unaided, which is why
  PAS helps GPT-4-turbo less than GPT-4-0613 in Table 1);
* ``instruction_following`` — probability of acting on an explicit
  directive in a complementary prompt;
* ``error_rate`` — probability that any given elaboration sentence is an
  overreach (a flaw the oracle can detect);
* ``verbosity`` — scales how many elaboration sentences the model emits.

Values are calibrated so the *ordering* of baseline benchmark scores
matches Table 1 (turbo ≈ 1106 ≫ 0613 > qwen2-72b > llama3-70b ≫ gpt-3.5);
absolute numbers are not expected to match the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownModelError

__all__ = ["CapabilityProfile", "PROFILES", "get_profile", "model_names"]


@dataclass(frozen=True)
class CapabilityProfile:
    """Behavioural parameters of one simulated model."""

    name: str
    cue_sensitivity: float
    instruction_following: float
    error_rate: float
    verbosity: float

    def __post_init__(self) -> None:
        for field_name in ("cue_sensitivity", "instruction_following", "error_rate"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.verbosity <= 0:
            raise ValueError(f"verbosity must be positive, got {self.verbosity}")

    @property
    def sft_retention(self) -> float:
        """How faithfully this model, used as an SFT base, reproduces a
        learned directive: stronger bases internalise training data better.
        """
        return 0.30 + 0.70 * self.instruction_following

    @property
    def sft_confusion(self) -> float:
        """Rate at which an SFT'd base hallucinates an unlearned directive."""
        return 0.8 * self.error_rate


_PROFILE_LIST: tuple[CapabilityProfile, ...] = (
    # --- large target models (Table 1) ---
    CapabilityProfile("gpt-4-turbo-2024-04-09", 0.80, 0.95, 0.05, 1.00),
    CapabilityProfile("gpt-4-1106-preview", 0.78, 0.94, 0.06, 1.05),
    CapabilityProfile("gpt-4-0613", 0.55, 0.90, 0.12, 0.80),
    CapabilityProfile("gpt-3.5-turbo-1106", 0.42, 0.78, 0.20, 0.70),
    CapabilityProfile("qwen2-72b-chat", 0.62, 0.90, 0.10, 0.90),
    CapabilityProfile("llama-3-70b-instruct", 0.58, 0.88, 0.11, 0.90),
    # --- small PAS base models (§4.1) ---
    CapabilityProfile("qwen2-7b-chat", 0.55, 0.86, 0.14, 0.75),
    CapabilityProfile("llama-2-7b-instruct", 0.38, 0.62, 0.24, 0.70),
    # --- pipeline workers (§3.1-3.2) ---
    CapabilityProfile("baichuan-13b", 0.50, 0.82, 0.16, 0.75),
    CapabilityProfile("teacher-gpt-4", 0.82, 0.95, 0.05, 0.90),
    # --- judge references ---
    CapabilityProfile("gpt-4-0314-reference", 0.58, 0.90, 0.11, 0.85),
    # --- extra open models (LLM-agnosticism demo; not in the paper's six) ---
    CapabilityProfile("mixtral-8x7b-instruct", 0.56, 0.86, 0.13, 0.85),
    CapabilityProfile("gemma-7b-it", 0.45, 0.80, 0.18, 0.75),
)

PROFILES: dict[str, CapabilityProfile] = {p.name: p for p in _PROFILE_LIST}

#: The six target models evaluated in Tables 1/2/5, in paper row order.
TARGET_MODELS: tuple[str, ...] = (
    "gpt-4-turbo-2024-04-09",
    "gpt-4-1106-preview",
    "gpt-4-0613",
    "gpt-3.5-turbo-1106",
    "qwen2-72b-chat",
    "llama-3-70b-instruct",
)


def get_profile(name: str) -> CapabilityProfile:
    """Look up a profile by model name; raises for unknown models."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise UnknownModelError(f"unknown model {name!r}; known models: {known}") from None


def model_names() -> list[str]:
    return [p.name for p in _PROFILE_LIST]
