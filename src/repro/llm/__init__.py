"""Simulated LLM substrate.

The paper plugs PAS into six proprietary / open LLMs served on GPUs or paid
APIs.  Offline, this package supplies the stand-in: deterministic engines
with per-model *capability profiles* that reproduce the causal structure the
experiments measure (see DESIGN.md §2).  Text is the only interface — the
engine reads prompts, optionally a complementary prompt, and writes a
response whose quality the oracle can assess.
"""

from repro.llm.api import DEFAULT_LATENCY, ChatClient, LatencyModel, Usage
from repro.llm.engine import SimulatedLLM
from repro.llm.profiles import PROFILES, CapabilityProfile, get_profile, model_names
from repro.llm.sft import SftConfig, SftDirectivePredictor
from repro.llm.types import ChatCompletion, Message

__all__ = [
    "ChatClient",
    "DEFAULT_LATENCY",
    "LatencyModel",
    "Usage",
    "SimulatedLLM",
    "PROFILES",
    "CapabilityProfile",
    "get_profile",
    "model_names",
    "SftConfig",
    "SftDirectivePredictor",
    "ChatCompletion",
    "Message",
]
