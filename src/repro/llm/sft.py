"""Supervised fine-tuning of a base model for directive prediction.

The paper's core training step is ``M_p <- SFT(M; D_generated)`` (§3.4):
fine-tune a small base LLM on (prompt, complementary prompt) pairs so it
maps fresh prompts to complementary prompts.  The GPU-free stand-in keeps
both properties that the experiments manipulate:

1. **Training-data quality matters.**  The fit is a real supervised
   estimator — prompts are embedded, the complementary prompts are parsed
   back into directive-aspect label sets, and prediction is
   similarity-weighted k-NN voting over the training set.  Noisy labels
   (the ablation's uncurated data) directly degrade the votes.
2. **Base-model capacity matters.**  The fitted predictor inherits the base
   profile's ``sft_retention`` (chance a learned directive is reproduced)
   and ``sft_confusion`` (chance a spurious directive is emitted), so
   Qwen2-7B produces a cleaner PAS model than LLaMA-2-7B (Table 1 vs 2).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.embedding.model import EmbeddingModel
from repro.errors import EmptyDatasetError, NotFittedError
from repro.llm.profiles import CapabilityProfile, get_profile
from repro.utils.rng import stable_hash
from repro.world.aspects import aspect_names, parse_directives

__all__ = ["SftConfig", "SftDirectivePredictor"]


@dataclass(frozen=True)
class SftConfig:
    """Hyper-parameters of the SFT fit."""

    k_neighbors: int = 7
    vote_threshold: float = 0.38
    min_similarity: float = 0.05

    def validate(self) -> None:
        if self.k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1, got {self.k_neighbors}")
        if not 0.0 < self.vote_threshold < 1.0:
            raise ValueError(f"vote_threshold must be in (0, 1), got {self.vote_threshold}")


class SftDirectivePredictor:
    """A fine-tuned prompt → directive-aspect predictor.

    Parameters
    ----------
    base_model:
        Registry name or profile of the base LLM being fine-tuned.
    embedder:
        Sentence encoder shared with the rest of the pipeline.
    config:
        k-NN voting hyper-parameters.
    seed:
        Training-run salt (fixes the capacity-noise stream).
    """

    def __init__(
        self,
        base_model: str | CapabilityProfile = "qwen2-7b-chat",
        embedder: EmbeddingModel | None = None,
        config: SftConfig | None = None,
        seed: int = 0,
    ):
        if isinstance(base_model, CapabilityProfile):
            self.base_profile = base_model
        else:
            self.base_profile = get_profile(base_model)
        self.embedder = embedder or EmbeddingModel()
        self.config = config or SftConfig()
        self.config.validate()
        self.seed = int(seed)
        self._train_matrix: np.ndarray | None = None
        self._train_labels: list[frozenset[str]] = []

    @property
    def is_fitted(self) -> bool:
        return self._train_matrix is not None

    @property
    def n_examples(self) -> int:
        return len(self._train_labels)

    def fit(self, pairs: list[tuple[str, str]]) -> "SftDirectivePredictor":
        """Fine-tune on (prompt, complementary prompt) pairs."""
        if not pairs:
            raise EmptyDatasetError("SFT requires at least one training pair")
        prompts = [p for p, _ in pairs]
        self._train_labels = [frozenset(parse_directives(c)) for _, c in pairs]
        self._train_matrix = self.embedder.embed_batch(prompts)
        return self

    def _vote(self, prompt_text: str) -> dict[str, float]:
        """Similarity-weighted aspect votes from the k nearest neighbours."""
        return self._vote_from_embedding(self.embedder.embed(prompt_text))

    def _vote_from_embedding(self, query: np.ndarray) -> dict[str, float]:
        assert self._train_matrix is not None
        # One BLAS matrix-vector product per query — deliberately not one
        # GEMM per batch: OpenBLAS GEMM and GEMV accumulate in different
        # orders in the last ulp, and the batched path must reproduce the
        # scalar path bit for bit.
        sims = self._train_matrix @ query
        k = min(self.config.k_neighbors, sims.shape[0])
        top = np.argpartition(-sims, k - 1)[:k] if sims.shape[0] > k else np.arange(sims.shape[0])
        votes: dict[str, float] = {}
        total = 0.0
        for idx in top:
            sim = float(sims[idx])
            if sim < self.config.min_similarity:
                continue
            total += sim
            for aspect in self._train_labels[int(idx)]:
                votes[aspect] = votes.get(aspect, 0.0) + sim
        if total <= 0.0:
            return {}
        return {aspect: value / total for aspect, value in votes.items()}

    def predict_aspects(self, prompt_text: str, embed_cache=None) -> set[str]:
        """Directive aspects the fine-tuned model would emit for a prompt.

        Voting produces the knowledge; the base model's capacity filters it:
        each voted aspect survives with probability ``sft_retention``, and
        with probability ``sft_confusion`` the model hallucinates an
        unrelated directive (weak bases drift off their training data).

        ``embed_cache`` (an :class:`~repro.serve.cache.LruCache`-shaped
        memo) skips re-embedding repeated prompts; embedding is a pure
        function of the text, so the cached path is bit-identical.
        """
        if not self.is_fitted:
            raise NotFittedError("SftDirectivePredictor used before fit()")
        if embed_cache is None:
            return self._filter_by_capacity(self._vote(prompt_text), prompt_text)
        embedding = self.embedder.embed_cached(prompt_text, embed_cache)
        return self.predict_aspects_from_embedding(prompt_text, embedding)

    def predict_aspects_from_embedding(
        self, prompt_text: str, embedding: np.ndarray
    ) -> set[str]:
        """Predict from a precomputed embedding of ``prompt_text``.

        The vector must be the one :meth:`EmbeddingModel.embed` (or a
        row of ``embed_batch``) produces for the text — callers that
        cache embeddings pass them back through here, and because the
        capacity filter is salted by the *text*, results stay identical
        to :meth:`predict_aspects`.
        """
        if not self.is_fitted:
            raise NotFittedError("SftDirectivePredictor used before fit()")
        return self._filter_by_capacity(
            self._vote_from_embedding(embedding), prompt_text
        )

    def predict_aspects_batch(
        self, prompt_texts: Sequence[str], embed_cache=None
    ) -> list[set[str]]:
        """Predict aspects for many prompts in one batched forward pass.

        One :meth:`EmbeddingModel.embed_batch` call embeds the whole batch;
        the k-NN vote then runs per row against ``_train_matrix``.  Results
        are bit-identical to ``[self.predict_aspects(p) for p in
        prompt_texts]``; an empty batch returns an empty list.

        With ``embed_cache``, each *unique* text is looked up once (one
        ``get``), the misses are embedded in a single ``embed_batch``
        call, and the fresh vectors are ``put`` back in first-occurrence
        order — the same final cache contents as the scalar loop, though
        duplicate occurrences do not re-count as hits.
        """
        if not self.is_fitted:
            raise NotFittedError("SftDirectivePredictor used before fit()")
        texts = list(prompt_texts)
        if not texts:
            return []
        if embed_cache is None:
            embedded = self.embedder.embed_batch(texts)
            return [
                self._filter_by_capacity(self._vote_from_embedding(embedded[i]), text)
                for i, text in enumerate(texts)
            ]
        unique: list[str] = []
        seen: set[str] = set()
        for text in texts:
            if text not in seen:
                seen.add(text)
                unique.append(text)
        vectors: dict[str, np.ndarray] = {}
        missing: list[str] = []
        for text in unique:
            hit = embed_cache.get(text)
            if hit is None:
                missing.append(text)
            else:
                vectors[text] = hit
        if missing:
            computed = self.embedder.embed_batch(missing)
            for text, row in zip(missing, computed):
                embed_cache.put(text, row)
                vectors[text] = row
        return [
            self._filter_by_capacity(self._vote_from_embedding(vectors[text]), text)
            for text in texts
        ]

    def _filter_by_capacity(self, votes: dict[str, float], prompt_text: str) -> set[str]:
        """Apply the vote threshold, then the base model's capacity noise."""
        chosen = {a for a, v in votes.items() if v >= self.config.vote_threshold}
        rng = np.random.default_rng(
            stable_hash(f"sft␞{self.base_profile.name}␞{self.seed}␞{prompt_text}")
        )
        retained = {a for a in sorted(chosen) if rng.random() < self.base_profile.sft_retention}
        if rng.random() < self.base_profile.sft_confusion:
            pool = [a for a in aspect_names() if a not in retained]
            retained.add(str(pool[int(rng.integers(len(pool)))]))
        return retained

    def label_accuracy(self, pairs: list[tuple[str, frozenset[str]]]) -> float:
        """Mean Jaccard overlap between predictions and reference aspect sets."""
        if not pairs:
            return 0.0
        scores = []
        for prompt_text, reference in pairs:
            predicted = self.predict_aspects(prompt_text)
            union = predicted | reference
            scores.append(len(predicted & reference) / len(union) if union else 1.0)
        return float(np.mean(scores))
