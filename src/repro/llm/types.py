"""Chat message / completion datatypes (OpenAI-style, minimal)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Message", "ChatCompletion", "build_messages"]

_VALID_ROLES = ("system", "user", "assistant")


@dataclass(frozen=True)
class Message:
    """One chat turn."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in _VALID_ROLES:
            raise ValueError(f"invalid role {self.role!r}; expected one of {_VALID_ROLES}")


def build_messages(prompt: str, complement: str = "") -> list[Message]:
    """The library-wide prompt + complement chat convention.

    PAS deploys by concatenation (§3.4): the user's prompt stays intact as
    the ``user`` turn and the complementary prompt, when non-empty, rides
    along as a preceding ``system`` turn.  Every layer that talks to a
    chat model — the gateway, :meth:`ChatClient.ask <repro.llm.api.ChatClient.ask>`,
    baselines, experiments — should build its message list here instead of
    re-implementing the concat convention.

    >>> [m.role for m in build_messages("question", "directive")]
    ['system', 'user']
    >>> [m.role for m in build_messages("question")]
    ['user']
    """
    messages = [Message("user", prompt)]
    if complement:
        messages.insert(0, Message("system", complement))
    return messages


@dataclass(frozen=True)
class ChatCompletion:
    """A model reply plus token accounting."""

    model: str
    content: str
    prompt_tokens: int
    completion_tokens: int
    retries: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens
