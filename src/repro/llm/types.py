"""Chat message / completion datatypes (OpenAI-style, minimal)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Message", "ChatCompletion"]

_VALID_ROLES = ("system", "user", "assistant")


@dataclass(frozen=True)
class Message:
    """One chat turn."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in _VALID_ROLES:
            raise ValueError(f"invalid role {self.role!r}; expected one of {_VALID_ROLES}")


@dataclass(frozen=True)
class ChatCompletion:
    """A model reply plus token accounting."""

    model: str
    content: str
    prompt_tokens: int
    completion_tokens: int
    retries: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens
