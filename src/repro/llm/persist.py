"""Serialization of trained artifacts.

A PAS deployment wants to train once and serve many times; this module
round-trips the fitted components to a single ``.npz`` file each:

* :func:`save_predictor` / :func:`load_predictor` — the SFT'd directive
  predictor (embedding matrix + label sets + config + base profile);
* :class:`repro.core.pas.PasModel` exposes ``save``/``load`` built on it.

The format stores the capability profile *by value*, so custom profiles
survive the round trip without needing registry entries.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import NotFittedError, ReproError
from repro.llm.profiles import CapabilityProfile
from repro.llm.sft import SftConfig, SftDirectivePredictor

__all__ = ["save_predictor", "load_predictor", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_predictor(predictor: SftDirectivePredictor, path: str | Path) -> Path:
    """Write a fitted predictor to ``path`` (``.npz`` appended if missing)."""
    if not predictor.is_fitted:
        raise NotFittedError("cannot save an unfitted predictor")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    profile = predictor.base_profile
    meta = {
        "format_version": FORMAT_VERSION,
        "seed": predictor.seed,
        "config": {
            "k_neighbors": predictor.config.k_neighbors,
            "vote_threshold": predictor.config.vote_threshold,
            "min_similarity": predictor.config.min_similarity,
        },
        "profile": {
            "name": profile.name,
            "cue_sensitivity": profile.cue_sensitivity,
            "instruction_following": profile.instruction_following,
            "error_rate": profile.error_rate,
            "verbosity": profile.verbosity,
        },
        "embedder": {
            "dim": predictor.embedder.dim,
            "char_orders": list(predictor.embedder.char_orders),
            "word_orders": list(predictor.embedder.word_orders),
            "word_weight": predictor.embedder.word_weight,
        },
    }
    labels = [sorted(label_set) for label_set in predictor._train_labels]
    np.savez(
        path,
        matrix=predictor._train_matrix,
        labels=np.array(json.dumps(labels)),
        meta=np.array(json.dumps(meta)),
    )
    return path


def load_predictor(path: str | Path) -> SftDirectivePredictor:
    """Reconstruct a predictor saved by :func:`save_predictor`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        labels = json.loads(str(archive["labels"]))
        matrix = archive["matrix"]
    if meta.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported predictor format {meta.get('format_version')!r} in {path}"
        )

    from repro.embedding.model import EmbeddingModel  # late import: avoid cycle

    embedder = EmbeddingModel(
        dim=int(meta["embedder"]["dim"]),
        char_orders=tuple(meta["embedder"]["char_orders"]),
        word_orders=tuple(meta["embedder"]["word_orders"]),
        word_weight=float(meta["embedder"]["word_weight"]),
    )
    predictor = SftDirectivePredictor(
        base_model=CapabilityProfile(**meta["profile"]),
        embedder=embedder,
        config=SftConfig(**meta["config"]),
        seed=int(meta["seed"]),
    )
    predictor._train_matrix = matrix
    predictor._train_labels = [frozenset(label_set) for label_set in labels]
    return predictor
