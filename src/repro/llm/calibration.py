"""Capability-profile estimation from observed behaviour.

Given only black-box access to an engine (prompt in, text out), estimate
the behavioural parameters its profile was built from.  This serves two
purposes:

* **validation** — the tests recover known profiles from behaviour alone,
  which certifies the engine actually exhibits the parameters it claims;
* **onboarding** — a user plugging a *new* simulated model into the
  benchmark suite can measure where it sits relative to the paper's six.

Estimation is method-of-moments over annotated probe prompts:

* ``cue_sensitivity`` — fraction of cue-visible needs the engine covers
  unprompted;
* ``instruction_following`` — fraction of supplied directives (for aspects
  with no cue in the prompt) that show up in the response;
* ``error_rate`` — flaw sentences per elaboration opportunity;
* ``verbosity`` — inverted from the mean elaboration count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.golden import render_complement
from repro.llm.engine import SimulatedLLM
from repro.world.aspects import aspect_names, find_markers
from repro.world.prompts import PromptFactory
from repro.world.quality import count_flaws

__all__ = ["ProfileEstimate", "estimate_profile"]


@dataclass(frozen=True)
class ProfileEstimate:
    """Estimated behavioural parameters with probe counts."""

    cue_sensitivity: float
    instruction_following: float
    error_rate: float
    n_probes: int

    def close_to(self, profile, tolerance: float = 0.12) -> bool:
        """Whether the estimate matches a profile within tolerance."""
        return (
            abs(self.cue_sensitivity - profile.cue_sensitivity) <= tolerance
            and abs(self.instruction_following - profile.instruction_following)
            <= tolerance
            and abs(self.error_rate - profile.error_rate) <= tolerance
        )


def estimate_profile(
    engine: SimulatedLLM, n_probes: int = 120, seed: int = 202
) -> ProfileEstimate:
    """Estimate an engine's capability parameters from probe responses."""
    if n_probes < 10:
        raise ValueError(f"need at least 10 probes, got {n_probes}")
    factory = PromptFactory(rng=np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)

    cue_seen = cue_total = 0
    followed = directed = 0
    flaws = opportunities = 0

    for _ in range(n_probes):
        prompt = factory.make_prompt(cue_rate=1.0, misleading_cue_rate=0.0)

        # Unprompted coverage of visible needs → cue sensitivity.
        plain = engine.respond(prompt.text)
        markers = find_markers(plain)
        cue_seen += len(markers & prompt.needs)
        cue_total += len(prompt.needs)

        # Directive for an aspect the prompt does not cue → pure
        # instruction following (coverage can't come from inference).
        uncued = [a for a in aspect_names() if a not in prompt.needs]
        probe_aspect = str(uncued[int(rng.integers(len(uncued)))])
        supplement = render_complement({probe_aspect}, salt="calib")
        guided = engine.respond(prompt.text, supplement=supplement)
        followed += probe_aspect in find_markers(guided)
        directed += 1

        # Flaw rate per elaboration opportunity.  Elaborations are the
        # sentences that are neither intro/closing nor aspect sections.
        n_sentences = plain.count(".") + plain.count("!") + plain.count("?")
        n_sections = len(markers)
        n_elab = max(n_sentences - n_sections - 2, 1)
        flaws += count_flaws(plain)
        opportunities += n_elab

    return ProfileEstimate(
        cue_sensitivity=cue_seen / max(cue_total, 1),
        instruction_following=followed / max(directed, 1),
        error_rate=flaws / max(opportunities, 1),
        n_probes=n_probes,
    )
