"""API-client wrapper around a simulated engine.

The paper accesses GPT-series models "via API" (§4.1); real API access means
usage accounting, transient failures, and retries.  ``ChatClient`` adds all
three on top of :class:`~repro.llm.engine.SimulatedLLM`, so pipeline code is
written the way production data-generation code is written — and the failure
path is testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExceededError, ReproError
from repro.llm.engine import SimulatedLLM
from repro.llm.types import ChatCompletion, Message
from repro.text.tokenizer import Tokenizer

__all__ = ["Usage", "TransientApiError", "ChatClient"]


class TransientApiError(ReproError):
    """A simulated transient API failure (retryable)."""


@dataclass
class Usage:
    """Cumulative token / request accounting."""

    requests: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    failures: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class ChatClient:
    """Chat-completions client with retries and budget enforcement.

    Parameters
    ----------
    engine:
        The simulated model to call.
    failure_rate:
        Probability that an individual attempt fails transiently; failures
        are deterministic per (input, attempt), so tests can rely on them.
    max_retries:
        Attempts beyond the first before giving up.
    max_requests:
        Optional hard request budget; exceeding it raises
        :class:`~repro.errors.BudgetExceededError`.
    """

    engine: SimulatedLLM
    failure_rate: float = 0.0
    max_retries: int = 3
    max_requests: int | None = None
    usage: Usage = field(default_factory=Usage)
    _tokenizer: Tokenizer = field(default_factory=Tokenizer, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {self.failure_rate}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def _attempt_fails(self, text: str, attempt: int) -> bool:
        if self.failure_rate <= 0.0:
            return False
        rng = self.engine._call_rng("api-failure", text, str(attempt))
        return bool(rng.random() < self.failure_rate)

    def complete(self, messages: list[Message]) -> ChatCompletion:
        """Run one chat completion: system+user prompts in, response out.

        The last user message is the prompt; an optional preceding system
        message is treated as the complementary supplement (this mirrors how
        PAS deploys: original prompt plus complement, concatenated).
        """
        if not messages:
            raise ValueError("messages must be non-empty")
        user_messages = [m for m in messages if m.role == "user"]
        if not user_messages:
            raise ValueError("at least one user message is required")
        prompt = user_messages[-1].content
        system_parts = [m.content for m in messages if m.role == "system"]
        supplement = " ".join(system_parts) if system_parts else None

        if self.max_requests is not None and self.usage.requests >= self.max_requests:
            raise BudgetExceededError(
                f"request budget of {self.max_requests} exhausted for {self.engine.name}"
            )
        self.usage.requests += 1

        retries = 0
        for attempt in range(self.max_retries + 1):
            if self._attempt_fails(prompt + (supplement or ""), attempt):
                self.usage.failures += 1
                retries += 1
                continue
            content = self.engine.respond(prompt, supplement=supplement)
            prompt_tokens = self._tokenizer.count(prompt) + (
                self._tokenizer.count(supplement) if supplement else 0
            )
            completion_tokens = self._tokenizer.count(content)
            self.usage.prompt_tokens += prompt_tokens
            self.usage.completion_tokens += completion_tokens
            return ChatCompletion(
                model=self.engine.name,
                content=content,
                prompt_tokens=prompt_tokens,
                completion_tokens=completion_tokens,
                retries=retries,
            )
        raise TransientApiError(
            f"{self.engine.name}: all {self.max_retries + 1} attempts failed transiently"
        )

    def ask(self, prompt: str, supplement: str | None = None) -> str:
        """Convenience wrapper returning just the response text."""
        messages = [Message("user", prompt)]
        if supplement:
            messages.insert(0, Message("system", supplement))
        return self.complete(messages).content
