"""API-client wrapper around a simulated engine.

The paper accesses GPT-series models "via API" (§4.1); real API access means
usage accounting, transient failures, and retries.  ``ChatClient`` adds all
three on top of :class:`~repro.llm.engine.SimulatedLLM`, so pipeline code is
written the way production data-generation code is written — and the failure
path is testable.

Resilience hooks (all optional, all no-ops when unset):

* ``fault_plan`` — a :class:`~repro.resilience.FaultPlan` injecting
  deterministic per-attempt completion failures, latency spikes, and
  per-model outage windows on a logical clock;
* ``retry_policy`` — a :class:`~repro.resilience.RetryPolicy` replacing the
  flat ``max_retries`` loop with capped exponential backoff (deterministic
  jitter) and an optional per-request deadline budget in logical ticks;
* ``clock`` — a supplier of logical time used to evaluate outage windows
  (the gateway passes its own request clock; standalone clients fall back
  to their request counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BudgetExceededError, ConfigError, DeadlineExceededError, ReproError
from repro.llm.engine import SimulatedLLM
from repro.llm.types import ChatCompletion, Message, build_messages
from repro.obs import NULL_OBS, Observability
from repro.resilience import FaultPlan, RetryPolicy
from repro.text.tokenizer import Tokenizer

__all__ = ["Usage", "TransientApiError", "LatencyModel", "DEFAULT_LATENCY", "ChatClient"]


@dataclass(frozen=True)
class LatencyModel:
    """Deterministic simulated service latency for one completion.

    Real API completions take time — roughly an affine function of the
    work (tokens in/out) stretched by load jitter.  This model reproduces
    that shape on the repo's logical clock so the serving engine can
    overlap completions in flight: each request costs

    ``(base_ticks + per_token_ticks * n_tokens) * (1 + jitter * u)``

    rounded to an integer >= 1, where ``u`` is one U[0, 1) draw from the
    engine's per-call RNG keyed on ``(model, seed, "latency", prompt,
    supplement)``.  Latency is therefore a pure function of the request —
    never of arrival order or wall time — which is what keeps the event
    loop's schedules byte-reproducible.
    """

    base_ticks: float = 6.0
    per_token_ticks: float = 0.25
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.base_ticks < 0 or self.per_token_ticks < 0:
            raise ConfigError(
                "latency components must be >= 0, got "
                f"base_ticks={self.base_ticks}, per_token_ticks={self.per_token_ticks}"
            )
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")

    def as_dict(self) -> dict:
        """JSON-safe dict: ``LatencyModel.from_dict(m.as_dict()) == m``."""
        return {
            "base_ticks": self.base_ticks,
            "per_token_ticks": self.per_token_ticks,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyModel":
        return cls(
            base_ticks=float(data["base_ticks"]),
            per_token_ticks=float(data["per_token_ticks"]),
            jitter=float(data["jitter"]),
        )

    def ticks(
        self,
        engine: SimulatedLLM,
        prompt: str,
        supplement: str | None,
        n_tokens: int,
    ) -> int:
        """Simulated service ticks for one completion (always >= 1)."""
        raw = self.base_ticks + self.per_token_ticks * n_tokens
        if self.jitter > 0.0:
            u = float(engine.call_rng("latency", prompt, supplement or "").random())
            raw *= 1.0 + self.jitter * u
        return max(1, int(round(raw)))


#: The latency profile assumed when a client has none configured.
DEFAULT_LATENCY = LatencyModel()


class TransientApiError(ReproError):
    """A simulated transient API failure (retryable)."""


@dataclass
class Usage:
    """Cumulative token / request accounting.

    ``failures`` counts failed *attempts* (each one either retried or
    terminal); ``backoff_ticks`` totals the logical-time pauses a
    :class:`~repro.resilience.RetryPolicy` inserted between attempts.
    """

    requests: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    failures: int = 0
    backoff_ticks: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class ChatClient:
    """Chat-completions client with retries and budget enforcement.

    Parameters
    ----------
    engine:
        The simulated model to call.
    failure_rate:
        Probability that an individual attempt fails transiently; failures
        are deterministic per (input, attempt), so tests can rely on them.
    max_retries:
        Attempts beyond the first before giving up (superseded by
        ``retry_policy.max_retries`` when a policy is set).
    max_requests:
        Optional hard request budget; exceeding it raises
        :class:`~repro.errors.BudgetExceededError`.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` injecting completion
        failures, latency spikes, and outage windows.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` adding backoff and a
        per-request deadline budget.
    clock:
        Optional logical-time supplier for outage-window evaluation;
        defaults to this client's own request counter.
    latency_model:
        Optional :class:`LatencyModel` giving each completion a simulated
        service time on the logical clock (see :meth:`completion_latency`).
        ``None`` falls back to :data:`DEFAULT_LATENCY`; latency never
        affects :meth:`complete` itself — it is advisory, consumed by the
        event-loop serving engine.
    max_inflight:
        Advisory concurrency limit for this model, mirroring real API
        per-key concurrency caps.  The client itself is synchronous; the
        serving engine reads this as the default number of completions it
        may hold in flight against this model.
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  When live,
        every :meth:`complete` runs inside a ``complete`` span (one
        ``retry[n]`` child per failed attempt, carrying the failure cause
        and backoff) and outcome counters land in the metrics registry.
        Defaults to the all-null bundle: no overhead, no state.
    """

    engine: SimulatedLLM
    failure_rate: float = 0.0
    max_retries: int = 3
    max_requests: int | None = None
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    clock: Callable[[], int] | None = None
    latency_model: LatencyModel | None = None
    max_inflight: int = 1
    obs: Observability = field(default=NULL_OBS, repr=False)
    usage: Usage = field(default_factory=Usage)
    _tokenizer: Tokenizer = field(default_factory=Tokenizer, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {self.failure_rate}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")

    def _now(self) -> int:
        """Logical time for outage windows (gateway clock or request count)."""
        if self.clock is not None:
            return self.clock()
        return self.usage.requests

    def _attempt_cause(self, text: str, attempt: int, tick: int) -> str | None:
        """Why this attempt fails — ``"outage"`` / ``"injected"`` /
        ``"random"`` — or None for a clean attempt.

        Checks run in the same order (and make the same RNG draws) as the
        original boolean predicate, so fault sequences are unchanged.
        """
        if self.fault_plan is not None:
            if self.fault_plan.in_outage(self.engine.name, tick):
                return "outage"
            if self.fault_plan.completion_fails(text, attempt):
                return "injected"
        if self.failure_rate <= 0.0:
            return None
        rng = self.engine.call_rng("api-failure", text, str(attempt))
        return "random" if bool(rng.random() < self.failure_rate) else None

    def _attempt_fails(self, text: str, attempt: int, tick: int) -> bool:
        return self._attempt_cause(text, attempt, tick) is not None

    @staticmethod
    def _parse(messages: list[Message]) -> tuple[str, str | None]:
        """Extract ``(prompt, supplement)`` from a message list.

        The last user message is the prompt; system messages join into the
        complementary supplement — the same convention :meth:`complete`
        applies, factored out so latency estimation sees identical keys.
        """
        if not messages:
            raise ValueError("messages must be non-empty")
        user_messages = [m for m in messages if m.role == "user"]
        if not user_messages:
            raise ValueError("at least one user message is required")
        prompt = user_messages[-1].content
        system_parts = [m.content for m in messages if m.role == "system"]
        return prompt, (" ".join(system_parts) if system_parts else None)

    def completion_latency(self, messages: list[Message]) -> int:
        """Simulated service ticks this completion will occupy in flight.

        A pure function of the request: the configured (or default)
        :class:`LatencyModel` evaluated on this client's engine, plus any
        deterministic latency spike the fault plan injects for the first
        attempt.  Never calls the engine's response faculty and never
        advances usage — safe to evaluate at scheduling time, before (or
        without) :meth:`complete`.
        """
        prompt, supplement = self._parse(messages)
        n_tokens = self._tokenizer.count(prompt) + (
            self._tokenizer.count(supplement) if supplement else 0
        )
        model = self.latency_model if self.latency_model is not None else DEFAULT_LATENCY
        ticks = model.ticks(self.engine, prompt, supplement, n_tokens)
        if self.fault_plan is not None:
            ticks += self.fault_plan.latency_ticks(prompt + (supplement or ""), 0)
        return ticks

    def complete(self, messages: list[Message]) -> ChatCompletion:
        """Run one chat completion: system+user prompts in, response out.

        The last user message is the prompt; an optional preceding system
        message is treated as the complementary supplement (this mirrors how
        PAS deploys: original prompt plus complement, concatenated).

        Raises :class:`TransientApiError` when every allowed attempt failed,
        or :class:`~repro.errors.DeadlineExceededError` when the retry
        policy's deadline budget cannot fit another attempt; both carry an
        ``attempts`` attribute with the number of attempts actually made.
        """
        prompt, supplement = self._parse(messages)

        if self.max_requests is not None and self.usage.requests >= self.max_requests:
            raise BudgetExceededError(
                f"request budget of {self.max_requests} exhausted for {self.engine.name}"
            )
        self.usage.requests += 1

        key = prompt + (supplement or "")
        tick = self._now()
        max_retries = (
            self.retry_policy.max_retries if self.retry_policy is not None else self.max_retries
        )
        budget = self.retry_policy.deadline_ticks if self.retry_policy is not None else None
        model = self.engine.name
        outcomes = self.obs.metrics.counter(
            "pas_completions_total", help="Completion calls by model and outcome."
        )
        retry_counter = self.obs.metrics.counter(
            "pas_completion_retries_total",
            help="Failed completion attempts by model and cause.",
        )
        elapsed = 0.0
        retries = 0
        with self.obs.tracer.span("complete", model=model) as span:
            for attempt in range(max_retries + 1):
                cost = 1.0
                if self.fault_plan is not None:
                    cost += self.fault_plan.latency_ticks(key, attempt)
                if budget is not None and elapsed + cost > budget:
                    error = DeadlineExceededError(
                        f"{self.engine.name}: deadline of {budget} ticks cannot fit "
                        f"attempt {attempt + 1} (elapsed {elapsed}, attempt cost {cost})"
                    )
                    error.attempts = attempt
                    span.set(attempts=attempt, deadline_ticks=budget)
                    outcomes.inc(model=model, outcome="deadline")
                    raise error
                elapsed += cost
                cause = self._attempt_cause(key, attempt, tick)
                if cause is not None:
                    self.usage.failures += 1
                    retries += 1
                    retry_counter.inc(model=model, cause=cause)
                    pause = 0.0
                    if self.retry_policy is not None and attempt < max_retries:
                        pause = self.retry_policy.backoff_ticks(key, attempt)
                        elapsed += pause
                        self.usage.backoff_ticks += pause
                    with self.obs.tracer.span(f"retry[{attempt}]") as retry_span:
                        retry_span.status = "error"
                        retry_span.set(cause=cause, backoff_ticks=pause)
                    continue
                content = self.engine.respond(prompt, supplement=supplement)
                prompt_tokens = self._tokenizer.count(prompt) + (
                    self._tokenizer.count(supplement) if supplement else 0
                )
                completion_tokens = self._tokenizer.count(content)
                self.usage.prompt_tokens += prompt_tokens
                self.usage.completion_tokens += completion_tokens
                span.set(attempts=attempt + 1, retries=retries)
                outcomes.inc(model=model, outcome="ok")
                return ChatCompletion(
                    model=self.engine.name,
                    content=content,
                    prompt_tokens=prompt_tokens,
                    completion_tokens=completion_tokens,
                    retries=retries,
                )
            error = TransientApiError(
                f"{self.engine.name}: all {max_retries + 1} attempts failed transiently"
            )
            error.attempts = max_retries + 1
            span.set(attempts=max_retries + 1)
            outcomes.inc(model=model, outcome="exhausted")
            raise error

    def ask(self, prompt: str, supplement: str | None = None) -> str:
        """Convenience wrapper returning just the response text."""
        return self.complete(build_messages(prompt, supplement or "")).content
