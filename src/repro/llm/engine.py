"""The simulated LLM engine.

``SimulatedLLM`` is the single stand-in for every model the paper calls via
GPU inference or paid APIs.  All behaviour is driven by the model's
:class:`~repro.llm.profiles.CapabilityProfile` and a per-call deterministic
RNG derived from the model name and the exact input text, so identical calls
always produce identical outputs ("temperature 0"), while different prompts
decorrelate.

The engine's faculties:

* :meth:`infer_needs` — notice latent-need cues in a prompt (probability
  ``cue_sensitivity`` per cue);
* :meth:`respond` — answer a prompt, optionally guided by a complementary
  prompt whose directives it follows with probability
  ``instruction_following``;
* :meth:`grade_prompt_quality` — the 0–10 prompt-quality scoring behaviour
  elicited from BaiChuan 13b in the paper's collection pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.utils import textproc
from repro.utils.rng import stable_hash
from repro.llm.generation import render_response
from repro.llm.profiles import CapabilityProfile, get_profile
from repro.world.aspects import find_cues, parse_directives

__all__ = ["SimulatedLLM"]


class SimulatedLLM:
    """One simulated model instance.

    Parameters
    ----------
    model:
        A registry name (see :mod:`repro.llm.profiles`) or an explicit
        :class:`CapabilityProfile` for custom models.
    seed:
        Session-level salt: two engines with different seeds behave like
        separately sampled deployments of the same model family.
    """

    def __init__(self, model: str | CapabilityProfile, seed: int = 0):
        if isinstance(model, CapabilityProfile):
            self.profile = model
        else:
            self.profile = get_profile(model)
        self.seed = int(seed)

    @property
    def name(self) -> str:
        return self.profile.name

    def call_rng(self, purpose: str, *texts: str) -> np.random.Generator:
        """Deterministic RNG for one faculty invocation.

        Public so wrappers (e.g. :class:`~repro.llm.api.ChatClient`) can
        derive failure/noise streams that are reproducible per
        ``(model, seed, purpose, texts)`` without sharing generator state.
        """
        material = "␞".join((self.name, str(self.seed), purpose, *texts))
        return np.random.default_rng(stable_hash(material))

    #: Backwards-compatible alias (pre-dates the public promotion).
    _call_rng = call_rng

    # ------------------------------------------------------------------ #
    # faculties
    # ------------------------------------------------------------------ #

    def infer_needs(self, prompt_text: str) -> set[str]:
        """Latent needs the model notices in the prompt on its own.

        Each cue present in the text is detected independently with
        probability ``cue_sensitivity``.
        """
        cues = find_cues(prompt_text)
        rng = self._call_rng("infer", prompt_text)
        return {
            aspect
            for aspect in sorted(cues)
            if rng.random() < self.profile.cue_sensitivity
        }

    def respond(self, prompt_text: str, supplement: str | None = None) -> str:
        """Answer ``prompt_text``; ``supplement`` is a complementary prompt.

        The engine unions the needs it inferred itself with the directives
        it chose to follow, renders one section per covered aspect, and adds
        profile-dependent elaboration with a profile-dependent flaw rate.
        A followed ``verification`` directive roughly halves the flaw rate —
        the textual analogue of "be careful" actually making models careful.
        """
        rng = self._call_rng("respond", prompt_text, supplement or "")
        p = self.profile

        inferred = self.infer_needs(prompt_text)
        # Directives reach the engine either as a supplement (complement-style
        # APE) or embedded in the prompt text itself (rewrite-style APE);
        # an instruction-following model honours both.
        directives = parse_directives(supplement) | parse_directives(prompt_text)
        followed = {a for a in sorted(directives) if rng.random() < p.instruction_following}
        covered = inferred | followed

        cues_present = set(find_cues(prompt_text))
        missed_trap = "logic_trap" in cues_present and "logic_trap" not in covered

        if "brevity" in covered:
            n_elab = 1 + int(rng.integers(0, 2))
        else:
            n_elab = 4 + int(round(p.verbosity * 2)) + int(rng.integers(0, 2))
            if "depth" in covered:
                n_elab += 2

        # Explicit guidance makes models more careful: every followed
        # directive trims the overreach rate, and a followed *verification*
        # directive cuts it hardest.
        error_rate = p.error_rate * (0.45 if "verification" in covered else 1.0)
        error_rate *= 0.82 ** min(len(followed), 3)
        # Low-variance flaw draw: expectation equals error_rate * n_elab, but
        # the integer part is deterministic, so individual responses track
        # the model's carefulness instead of coin-flip luck.
        expected_flaws = error_rate * n_elab
        n_flaws = int(expected_flaws) + int(rng.random() < expected_flaws % 1.0)
        n_flaws = min(n_flaws, n_elab)
        flawed_slots = set(rng.choice(n_elab, size=n_flaws, replace=False)) if n_flaws else set()

        return render_response(
            prompt_text=prompt_text,
            covered_aspects=covered,
            n_elaborations=n_elab,
            flawed_slots=flawed_slots,
            missed_trap=missed_trap,
            rng=rng,
        )

    def grade_prompt_quality(self, prompt_text: str) -> float:
        """Score prompt quality on 0–10 (the BaiChuan-grader behaviour).

        The grade rewards substance (enough distinct content words, a
        recognisable request) and punishes degenerate inputs, with mild
        model-dependent noise.  Junk prompts from the synthetic corpus land
        well below 5; real prompts land well above.
        """
        toks = textproc.words(prompt_text)
        if not toks:
            return 0.0
        unique_ratio = len(set(toks)) / len(toks)
        substance = min(len(set(toks)) / 8.0, 1.0)
        has_request = any(
            w in toks
            for w in (
                "how",
                "what",
                "why",
                "which",
                "explain",
                "write",
                "translate",
                "summarize",
                "compare",
                "solve",
                "give",
                "recommend",
                "analyze",
                "extract",
                "draft",
                "act",
                "tell",
                "is",
                "does",
                "can",
                "list",
                "compute",
                "show",
                "help",
                "chat",
                "pull",
                "assess",
                "brainstorm",
                "compose",
                "pretend",
                "condense",
                "fact",
                "my",
                "here",
                "in",
                "provide",
            )
        )
        score = 10.0 * (0.45 * substance + 0.35 * unique_ratio + 0.2 * float(has_request))
        noise = float(self._call_rng("grade", prompt_text).normal(0.0, 0.4))
        penalty = 0.0 if len(toks) >= 5 else 3.0
        return float(np.clip(score + noise - penalty, 0.0, 10.0))

    def grade_prompt_quality_batch(self, prompt_texts: list[str]) -> list[float]:
        """Grade many prompts; bit-identical to the scalar loop.

        Each grade's noise draw is keyed on the prompt text alone (never on
        batch position or shared RNG state), so
        ``grade_prompt_quality_batch(ts) == [grade_prompt_quality(t) for t
        in ts]`` holds exactly — the contract every batched path in the
        repo carries.
        """
        return [self.grade_prompt_quality(text) for text in prompt_texts]
