"""Response text rendering for the simulated LLM engine.

A response is composed of:

* an intro sentence that echoes the prompt's topic words (this is what the
  oracle's intent check keys on);
* one section sentence per aspect the engine decided to address — each
  section embeds one of that aspect's *marker phrases*;
* elaboration sentences, some of which may be flawed (they then embed a
  flaw-marker phrase from :data:`repro.world.quality.FLAW_MARKERS`);
* a closing sentence.

The renderer is purely deterministic given its RNG.
"""

from __future__ import annotations

import numpy as np

from repro.utils import textproc
from repro.world.quality import FLAW_MARKERS

__all__ = [
    "RESPONSE_SECTIONS",
    "extract_topic_words",
    "render_response",
]

# One or two section templates per aspect; every template contains a marker
# phrase from repro.world.aspects.ASPECTS[name].marker_phrases verbatim.
RESPONSE_SECTIONS: dict[str, tuple[str, ...]] = {
    "step_by_step": (
        "Let us go step by step: begin with the setup, then proceed through each stage in order.",
        "As a first step, establish the groundwork; each later stage builds on the one before.",
    ),
    "logic_trap": (
        "Careful reading matters here: the trap here is a hidden assumption the wording invites.",
        "Reasoning carefully, we should test the hidden assumption before accepting the obvious reading.",
    ),
    "depth": (
        "Looking at the underlying mechanism, several influencing factors interact to produce the outcome.",
        "A detailed analysis shows how each influencing factor contributes in depth.",
    ),
    "structure": (
        "The answer is organized into sections with clear headings and a logical flow.",
        "Each part below follows a logical flow from premises to conclusion.",
    ),
    "examples": (
        "For example, consider a small concrete case that exhibits the same behaviour.",
        "As an example, a worked example with real numbers makes the pattern visible.",
    ),
    "audience": (
        "In plain terms, and without jargon, the core idea is simpler than it first appears.",
        "For a beginner, it helps to start from the everyday intuition.",
    ),
    "format": (
        "The output below follows the requested format exactly, with no stray prose.",
        "Here is the formatted output, matching the exact format that was asked for.",
    ),
    "constraints": (
        "Everything below stays within the stated limits, respecting the constraint throughout.",
        "As required, no requirement has been relaxed or added.",
    ),
    "context": (
        "In this context, the usual generic advice does not directly apply, so the answer adapts to it.",
        "Given the setting described, the recommendation changes under these conditions.",
    ),
    "edge_cases": (
        "One edge case deserves attention: the empty or degenerate input is a classic failure mode.",
        "A boundary condition worth handling explicitly is the smallest valid input.",
    ),
    "style": (
        "Keeping the requested tone, the wording below stays consistent from start to finish.",
        "The answer is written in the requested style throughout.",
    ),
    "brevity": (
        "In short, the essential point fits in a sentence.",
        "The short answer comes first; details follow only where they earn their place.",
    ),
    "comparison": (
        "Compared with the alternative, the pros and cons fall on different dimensions.",
        "On balance, weighing the options against explicit criteria favours one side.",
    ),
    "verification": (
        "To be precise, each claim below has been verified against what can actually be supported.",
        "With appropriate caution, uncertain claims are flagged rather than asserted.",
    ),
}

# Neutral filler that carries no aspect markers and no flaw markers.
_ELABORATION_BANK: tuple[str, ...] = (
    "This rests on principles that have been studied extensively.",
    "Practitioners usually weigh effort against expected benefit here.",
    "The same idea recurs across many related settings.",
    "Small adjustments to the inputs change the outcome only gradually.",
    "There are several reasonable ways to proceed from this point.",
    "Experience suggests starting simple and refining as needed.",
    "The key quantities interact, so it pays to track them together.",
    "A measured approach avoids most of the common pitfalls.",
)

_INTRO_TEMPLATES: tuple[str, ...] = (
    "Here is a considered answer about {topic}.",
    "Let me address {topic} directly.",
    "Regarding {topic}, here is what matters.",
)

_CLOSING_TEMPLATES: tuple[str, ...] = (
    "Taken together, this should resolve the question.",
    "That covers the substance of the matter.",
    "This gives a solid basis for the next decision.",
)

# The confidently-wrong conclusion a model emits when it misses a logic trap.
_TRAP_BLUNDER = "The naive answer is clearly right, so no further checks are needed."

_STOPWORDS = frozenset(
    "the a an and or of in on for to with about into under is are does do how what "
    "why which can could would should me my i you your it its this that these those "
    "as at by from given versus there here when where then than them they some any "
    "please answer question tell give make keep after will each much very".split()
)


def extract_topic_words(prompt_text: str, limit: int = 6) -> list[str]:
    """Content words the engine treats as the prompt's topic.

    This mirrors what an attentive responder does: echo the question's
    subject matter.  If a rewriting baseline hands the engine a prompt that
    lost the original topic words, the echo drifts with it — which is
    exactly the intent-preservation failure the oracle penalises.
    """
    toks = textproc.words(prompt_text)
    content = [t for t in toks if len(t) > 3 and t not in _STOPWORDS]
    seen: list[str] = []
    for tok in content:
        if len(seen) >= limit:
            break
        if tok not in seen:
            seen.append(tok)
    return seen


def render_response(
    prompt_text: str,
    covered_aspects: set[str],
    n_elaborations: int,
    flawed_slots: set[int],
    missed_trap: bool,
    rng: np.random.Generator,
) -> str:
    """Compose the full response text.

    Parameters
    ----------
    prompt_text:
        The (possibly rewritten) user prompt the engine is answering.
    covered_aspects:
        Aspects the engine decided to address; each yields one section.
    n_elaborations:
        Number of filler sentences to emit.
    flawed_slots:
        Indices in ``range(n_elaborations)`` whose sentence is an overreach.
    missed_trap:
        True when the prompt carried a logic-trap cue the engine did not
        pick up — it then blunders confidently.
    """
    topic_words = extract_topic_words(prompt_text)
    topic = " ".join(topic_words[:3]) if topic_words else "the question"
    parts: list[str] = []
    intro = str(rng.choice(_INTRO_TEMPLATES)).format(topic=topic)
    if len(topic_words) > 3:
        intro += " It touches on " + " and ".join(topic_words[3:5]) + "."
    parts.append(intro)

    for aspect in sorted(covered_aspects):
        bank = RESPONSE_SECTIONS[aspect]
        parts.append(str(bank[int(rng.integers(len(bank)))]))

    for slot in range(max(0, n_elaborations)):
        if slot in flawed_slots:
            parts.append("Note that " + str(rng.choice(FLAW_MARKERS)) + " in this situation.")
        else:
            parts.append(str(rng.choice(_ELABORATION_BANK)))

    if missed_trap:
        parts.append(_TRAP_BLUNDER)

    parts.append(str(rng.choice(_CLOSING_TEMPLATES)))
    return " ".join(parts)
