"""PPO-based RLHF alignment (Ouyang et al. 2022) as a data-efficiency
comparator.

The paper's Figure 7 compares *data consumption*: PPO-style alignment needs
77k human-labelled examples versus PAS's 9k machine-generated pairs, and
Table 3 marks it as needing human labour and being tied to one LLM.  The
comparator here carries those facts and can synthesise a correspondingly
shaped training corpus (prompt, response, scalar reward) so the Figure 7
bench constructs every corpus it reports on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import ApeMethod, FlexibilityProfile
from repro.llm.engine import SimulatedLLM
from repro.world.prompts import PromptFactory
from repro.world.quality import assess_response

__all__ = ["PpoComparator", "PPO_PAPER_DATA_SIZE"]

#: Human-labelled examples reported for InstructGPT-style PPO in Figure 7.
PPO_PAPER_DATA_SIZE = 77_000


@dataclass(frozen=True)
class RewardRecord:
    """One RLHF training record: a response with its human reward."""

    prompt_text: str
    response_text: str
    reward: float


class PpoComparator(ApeMethod):
    """Stands in for an RLHF-aligned model in flexibility/efficiency tables.

    As an APE arm it is a pass-through (alignment changes the model, not
    the prompt); its value in the reproduction is its metadata and its
    corpus builder.
    """

    name = "ppo"

    def __init__(self, labeling_model: str = "qwen2-7b-chat", seed: int = 11):
        self._engine = SimulatedLLM(labeling_model, seed=seed)
        self.seed = int(seed)

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        return prompt_text, None

    def build_training_corpus(self, n_records: int = 770) -> list[RewardRecord]:
        """Synthesise a (scaled-down) PPO reward-model corpus.

        Rewards come from the quality oracle — the stand-in for the human
        annotators whose labour Table 3 charges PPO with.
        """
        if n_records < 1:
            raise ValueError(f"n_records must be >= 1, got {n_records}")
        factory = PromptFactory(rng=np.random.default_rng(self.seed))
        records = []
        for _ in range(n_records):
            prompt = factory.make_prompt()
            response = self._engine.respond(prompt.text)
            reward = assess_response(prompt, response).score / 5.0
            records.append(RewardRecord(prompt.text, response, reward))
        return records

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="ppo",
            needs_human_labor=True,
            llm_agnostic=False,  # the aligned weights are one specific model
            task_agnostic=True,
            training_examples=PPO_PAPER_DATA_SIZE,
        )
