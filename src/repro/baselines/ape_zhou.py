"""APE — Automatic Prompt Engineer (Zhou et al. 2022), instruction induction.

The original APE induces a natural-language instruction from input/output
demonstrations, then selects the candidate with the best score on held-out
demonstrations.  The stand-in follows the same two phases per category:

1. **Induction** — candidate instructions are the directive-aspect sets
   observed in that category's golden exemplars (what a proposal model
   would infer from demonstrations);
2. **Selection** — each candidate is scored by the oracle quality of the
   target model's responses on the exemplar prompts; the argmax wins.

At serve time a category classifier routes each prompt to its induced
instruction.  Like OPRO/ProTeGi, the result is tied to the scoring model —
not LLM-agnostic — and needs labelled demonstrations per task.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.baselines.base import ApeMethod, FlexibilityProfile
from repro.classify.model import CategoryClassifier
from repro.core.golden import GoldenData, build_golden_data, render_complement
from repro.errors import NotFittedError
from repro.llm.engine import SimulatedLLM
from repro.world.aspects import parse_directives
from repro.world.quality import assess_response

__all__ = ["ApeInduction"]


class ApeInduction(ApeMethod):
    """Per-category induced instructions with demonstration-based selection."""

    name = "ape-induction"

    def __init__(
        self,
        target_model: str = "gpt-3.5-turbo-1106",
        golden: GoldenData | None = None,
        classifier: CategoryClassifier | None = None,
        max_directives: int = 3,
        seed: int = 41,
    ):
        self._engine = SimulatedLLM(target_model, seed=seed)
        self.golden = golden or build_golden_data(seed=seed)
        self.max_directives = max_directives
        self.seed = int(seed)
        self._classifier = classifier
        self._instructions: dict[str, str] | None = None

    def _candidates(self, category: str) -> list[frozenset[str]]:
        """Aspect sets a proposal model would induce from the exemplars."""
        exemplar_sets = [
            frozenset(parse_directives(pair.complement))
            for pair in self.golden.exemplars(category)
        ]
        candidates = {s for s in exemplar_sets if s}
        # Sub-combinations of the union act as additional proposals.
        union = sorted(set().union(*exemplar_sets)) if exemplar_sets else []
        for size in (1, 2):
            for combo in combinations(union, min(size, len(union))):
                candidates.add(frozenset(combo))
        return sorted(candidates, key=lambda s: (len(s), sorted(s)))

    def _score(self, category: str, aspects: frozenset[str]) -> float:
        instruction = (
            render_complement(set(aspects), salt=f"ape␞{category}") if aspects else None
        )
        scores = [
            assess_response(
                pair.prompt,
                self._engine.respond(pair.prompt.text, supplement=instruction),
            ).score
            for pair in self.golden.exemplars(category)
        ]
        return float(np.mean(scores)) if scores else 0.0

    def induce(self) -> dict[str, str]:
        """Run induction + selection for every golden category."""
        instructions: dict[str, str] = {}
        for category in self.golden.categories():
            best_set: frozenset[str] = frozenset()
            best_score = self._score(category, best_set)
            for candidate in self._candidates(category):
                if len(candidate) > self.max_directives:
                    continue
                score = self._score(category, candidate)
                if score > best_score + 1e-9:
                    best_set, best_score = candidate, score
            instructions[category] = (
                render_complement(set(best_set), salt=f"ape␞{category}")
                if best_set
                else ""
            )
        self._instructions = instructions
        return instructions

    @property
    def instructions(self) -> dict[str, str]:
        if self._instructions is None:
            raise NotFittedError("ApeInduction used before induce()")
        return dict(self._instructions)

    def _route(self, prompt_text: str) -> str:
        if self._classifier is None:
            self._classifier = CategoryClassifier().fit_synthetic(seed=self.seed + 1)
        return self._classifier.predict(prompt_text)

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        if self._instructions is None:
            raise NotFittedError("ApeInduction used before induce()")
        category = self._route(prompt_text)
        instruction = self._instructions.get(category, "")
        return prompt_text, (instruction or None)

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="ape-induction",
            needs_human_labor=True,  # demonstrations per task
            llm_agnostic=False,
            task_agnostic=False,
            training_examples=None,
        )
