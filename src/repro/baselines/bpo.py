"""BPO — Black-box Prompt Optimization (Cheng et al. 2023), the paper's
strongest baseline.

BPO differs from PAS in two load-bearing ways that this implementation
preserves:

1. **It is trained on human preference data** (14k pairs in the original;
   Table 3 marks it "needs human labour").  The preference corpus here is
   generated with a deliberately noisier labelling process than the PAS
   pipeline's curated one — preference judgements identify which rewrite is
   better, not which directives are right, so the derived supervision is
   diffuse.
2. **It rewrites the user prompt instead of complementing it.**  Rewriting
   can drop constraints or drift off the user's topic; the paper observes
   BPO landing *below* the no-APE baseline on some models (Table 1), and
   that instability emerges here from the same mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import ApeMethod, FlexibilityProfile
from repro.core.golden import render_complement
from repro.llm.sft import SftConfig, SftDirectivePredictor
from repro.utils import textproc
from repro.utils.rng import stable_hash
from repro.world.aspects import aspect_names
from repro.world.prompts import PromptFactory

__all__ = ["BpoConfig", "BpoModel", "build_bpo_preference_corpus", "BPO_PAPER_DATA_SIZE"]

#: Training-set size reported for BPO in the paper's Figure 7 discussion.
BPO_PAPER_DATA_SIZE = 14_000


@dataclass(frozen=True)
class PreferencePair:
    """One human-preference record: two rewrites, one preferred."""

    prompt_text: str
    chosen: str
    rejected: str


def build_bpo_preference_corpus(
    n_pairs: int = 600,
    seed: int = 7,
    label_noise: float = 0.30,
) -> list[PreferencePair]:
    """Generate a BPO-style preference corpus.

    Each record pairs a prompt with a better and a worse rewrite.  The
    "chosen" rewrite appends directives derived from a noisy reading of the
    prompt (``label_noise`` controls spurious/dropped directives) — the
    statistical ceiling of preference-label supervision.
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    if not 0.0 <= label_noise <= 1.0:
        raise ValueError(f"label_noise must be in [0, 1], got {label_noise}")
    rng = np.random.default_rng(seed)
    factory = PromptFactory(rng=rng)
    names = aspect_names()
    corpus: list[PreferencePair] = []
    for i in range(n_pairs):
        prompt = factory.make_prompt()
        aspects = set(prompt.needs)
        # Preference labelling is diffuse: drop and add aspects at the
        # noise rate before rendering the "better" rewrite.  The additive
        # noise is partly systematic (annotators habitually prefer the
        # rewrite that demands a per-category pet aspect), so it survives
        # k-NN averaging in the trained rewriter.
        aspects = {a for a in sorted(aspects) if rng.random() > label_noise * 0.5}
        if rng.random() < label_noise:
            if rng.random() < 0.7:
                aspects.add(names[stable_hash(f"bpo-pet␞{prompt.category}") % len(names)])
            else:
                aspects.add(str(names[int(rng.integers(len(names)))]))
        chosen = prompt.text + " " + render_complement(aspects, salt=f"bpo␞{i}")
        rejected = prompt.text
        corpus.append(PreferencePair(prompt.text, chosen, rejected))
    return corpus


@dataclass(frozen=True)
class BpoConfig:
    """Rewrite-behaviour knobs."""

    truncate_rate: float = 0.06
    generic_rate: float = 0.04
    max_directives: int = 3

    def validate(self) -> None:
        if self.truncate_rate + self.generic_rate >= 1.0:
            raise ValueError("drift rates must sum below 1.0")


_GENERIC_REWRITE = (
    "Please address the following request thoroughly, think about what the "
    "asker really wants, and answer as well as possible."
)


class BpoModel(ApeMethod):
    """A trained BPO prompt rewriter.

    Parameters
    ----------
    base_model:
        BPO fine-tunes LLaMA-2-7B in the original work; same default here.
    config:
        Rewrite drift behaviour.
    seed:
        Training salt.
    """

    name = "bpo"

    def __init__(
        self,
        base_model: str = "llama-2-7b-instruct",
        config: BpoConfig | None = None,
        seed: int = 7,
        n_preference_pairs: int = 600,
    ):
        self.config = config or BpoConfig()
        self.config.validate()
        self.seed = int(seed)
        self._n_preference_pairs = n_preference_pairs
        corpus = build_bpo_preference_corpus(n_pairs=n_preference_pairs, seed=seed)
        # BPO's supervision: the chosen rewrite *is* the target text; the
        # directive labels recovered from it inherit the preference noise.
        training_pairs = [(p.prompt_text, p.chosen) for p in corpus]
        self.predictor = SftDirectivePredictor(
            base_model=base_model,
            config=SftConfig(),
            seed=seed,
        ).fit(training_pairs)

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        """Rewrite the prompt (no supplement — the original text is replaced).

        Most rewrites keep the original wording and append directives, but a
        fraction truncate the prompt (losing trailing constraints) or
        replace it with a generic paraphrase (losing the topic) — the
        instability inherent to rewriting.
        """
        rng = np.random.default_rng(stable_hash(f"bpo-rewrite␞{self.seed}␞{prompt_text}"))
        aspects = self.predictor.predict_aspects(prompt_text)
        directives = (
            render_complement(aspects, salt=f"bpo-out␞{prompt_text}") if aspects else ""
        )

        roll = rng.random()
        if roll < self.config.generic_rate:
            body = _GENERIC_REWRITE
        elif roll < self.config.generic_rate + self.config.truncate_rate:
            first = textproc.sentences(prompt_text)
            body = first[0] if first else prompt_text
        else:
            body = prompt_text
        rewritten = f"{body} {directives}".strip()
        return rewritten, None

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="bpo",
            needs_human_labor=True,  # preference pairs are human judgements
            llm_agnostic=True,
            task_agnostic=True,
            training_examples=BPO_PAPER_DATA_SIZE,
        )
