"""Common interface for prompt-side methods (PAS and every baseline).

Every method is a *prompt transformer*: it receives the user prompt and
produces ``(prompt_for_model, supplement)``.  Complement-style methods keep
the prompt intact and return a supplement; rewrite-style methods replace the
prompt and return no supplement.  The evaluation harness treats both shapes
uniformly.

Each method also carries a :class:`FlexibilityProfile` — the three columns
of the paper's Table 3 (human labour, LLM-agnostic, task-agnostic) plus the
training-data consumption used by Figure 7.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["FlexibilityProfile", "ApeMethod", "NoApe"]


@dataclass(frozen=True)
class FlexibilityProfile:
    """One row of Table 3 plus the Figure 7 data-consumption figure."""

    method: str
    needs_human_labor: bool
    llm_agnostic: bool
    task_agnostic: bool
    training_examples: int | None = None

    @property
    def satisfies_all(self) -> bool:
        return not self.needs_human_labor and self.llm_agnostic and self.task_agnostic


class ApeMethod(ABC):
    """A prompt-side method that can be plugged into the evaluation loop."""

    name: str = "abstract"

    @abstractmethod
    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        """Map a user prompt to ``(prompt_for_model, supplement)``."""

    @property
    @abstractmethod
    def flexibility(self) -> FlexibilityProfile:
        """The method's Table-3 row."""


class NoApe(ApeMethod):
    """The paper's "None" arm: pass the prompt through untouched."""

    name = "none"

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        return prompt_text, None

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="none",
            needs_human_labor=False,
            llm_agnostic=True,
            task_agnostic=True,
            training_examples=0,
        )
