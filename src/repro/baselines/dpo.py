"""DPO — Direct Preference Optimization (Rafailov et al. 2024) as a
data-efficiency comparator (Figure 7: 170k preference pairs vs PAS's 9k).

Like :mod:`repro.baselines.ppo`, the point of this arm is data-consumption
accounting plus a runnable corpus builder, not prompt transformation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import ApeMethod, FlexibilityProfile
from repro.llm.engine import SimulatedLLM
from repro.world.prompts import PromptFactory
from repro.world.quality import assess_response

__all__ = ["DpoComparator", "DPO_PAPER_DATA_SIZE"]

#: Preference pairs reported for DPO-style alignment in Figure 7.
DPO_PAPER_DATA_SIZE = 170_000


@dataclass(frozen=True)
class DpoPreference:
    """One DPO record: the preferred and dispreferred response."""

    prompt_text: str
    chosen: str
    rejected: str


class DpoComparator(ApeMethod):
    """Metadata + corpus builder for the DPO comparison."""

    name = "dpo"

    def __init__(
        self,
        strong_model: str = "qwen2-72b-chat",
        weak_model: str = "llama-2-7b-instruct",
        seed: int = 13,
    ):
        self._strong = SimulatedLLM(strong_model, seed=seed)
        self._weak = SimulatedLLM(weak_model, seed=seed)
        self.seed = int(seed)

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        return prompt_text, None

    def build_training_corpus(self, n_records: int = 1700) -> list[DpoPreference]:
        """Synthesise a (scaled-down) DPO preference corpus.

        For each prompt, a stronger and a weaker engine respond; the oracle
        (standing in for the human rater) orders the two.
        """
        if n_records < 1:
            raise ValueError(f"n_records must be >= 1, got {n_records}")
        factory = PromptFactory(rng=np.random.default_rng(self.seed))
        records = []
        for _ in range(n_records):
            prompt = factory.make_prompt()
            a = self._strong.respond(prompt.text)
            b = self._weak.respond(prompt.text)
            qa = assess_response(prompt, a).score
            qb = assess_response(prompt, b).score
            chosen, rejected = (a, b) if qa >= qb else (b, a)
            records.append(DpoPreference(prompt.text, chosen, rejected))
        return records

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="dpo",
            needs_human_labor=True,
            llm_agnostic=False,
            task_agnostic=True,
            training_examples=DPO_PAPER_DATA_SIZE,
        )
