"""Zero-shot chain-of-thought (Kojima et al. 2022) as an APE arm.

"Let's think step by step" is the canonical hand-crafted prompt
augmentation; in this world it maps to unconditionally appending the
``step_by_step`` directive.  It needs no training at all, but it is also
blind: it supplements every prompt the same way, spurious or not — the
contrast that motivates *learned* augmentation.
"""

from __future__ import annotations

from repro.baselines.base import ApeMethod, FlexibilityProfile
from repro.world.aspects import render_directive

__all__ = ["ZeroShotCot"]


class ZeroShotCot(ApeMethod):
    """Append a fixed step-by-step directive to every prompt."""

    name = "zero-shot-cot"

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        return prompt_text, render_directive("step_by_step", variant=0)

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="zero-shot-cot",
            needs_human_labor=False,
            llm_agnostic=True,
            task_agnostic=True,
            training_examples=0,
        )
