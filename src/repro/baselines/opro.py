"""OPRO — LLMs as optimizers (Yang et al. 2023).

OPRO searches for a single task-level instruction by iteratively proposing
candidates and scoring them on a *training set with known answers* — an
objective the paper points out is unavailable in deployment, and the reason
Table 3 marks OPRO as neither LLM- nor task-agnostic: the optimized
instruction is specific to one (task, model) pair.

Here the search space is sets of up to three directives; the objective is
mean oracle quality of the target model's responses on the training
prompts; the optimizer is a deterministic hill climb with restarts (a
faithful stand-in for the LLM-proposes/score-selects loop).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.baselines.base import ApeMethod, FlexibilityProfile
from repro.core.golden import render_complement
from repro.errors import NotFittedError
from repro.llm.engine import SimulatedLLM
from repro.world.aspects import aspect_names
from repro.world.prompts import SyntheticPrompt
from repro.world.quality import assess_response

__all__ = ["OproOptimizer"]


class OproOptimizer(ApeMethod):
    """Per-task instruction optimizer.

    Parameters
    ----------
    target_model:
        The specific LLM the instruction is optimized for.
    max_directives:
        Instruction size cap (mirrors the golden-data cap).
    n_restarts:
        Independent hill-climb restarts; the best wins.
    """

    name = "opro"

    def __init__(
        self,
        target_model: str = "gpt-3.5-turbo-1106",
        max_directives: int = 3,
        n_restarts: int = 3,
        seed: int = 23,
    ):
        self._engine = SimulatedLLM(target_model, seed=seed)
        self.max_directives = max_directives
        self.n_restarts = n_restarts
        self.seed = int(seed)
        self._instruction: str | None = None
        self._history: list[tuple[frozenset[str], float]] = []

    @property
    def instruction(self) -> str:
        if self._instruction is None:
            raise NotFittedError("OproOptimizer used before optimize()")
        return self._instruction

    @property
    def history(self) -> list[tuple[frozenset[str], float]]:
        """(candidate, objective) trace of the optimization run."""
        return list(self._history)

    def _objective(
        self, aspects: frozenset[str], train_prompts: list[SyntheticPrompt]
    ) -> float:
        instruction = render_complement(set(aspects), salt="opro") if aspects else None
        scores = [
            assess_response(p, self._engine.respond(p.text, supplement=instruction)).score
            for p in train_prompts
        ]
        return float(np.mean(scores)) if scores else 0.0

    def optimize(self, train_prompts: list[SyntheticPrompt]) -> str:
        """Hill-climb an instruction against the training objective."""
        if not train_prompts:
            raise ValueError("OPRO needs a non-empty training set")
        rng = np.random.default_rng(self.seed)
        names = aspect_names()
        self._history = []
        best_set: frozenset[str] = frozenset()
        best_score = self._objective(best_set, train_prompts)
        self._history.append((best_set, best_score))

        for _ in range(self.n_restarts):
            current = frozenset({str(rng.choice(names))})
            current_score = self._objective(current, train_prompts)
            self._history.append((current, current_score))
            improved = True
            while improved:
                improved = False
                for candidate in self._neighbors(current, names):
                    score = self._objective(candidate, train_prompts)
                    self._history.append((candidate, score))
                    if score > current_score + 1e-9:
                        current, current_score = candidate, score
                        improved = True
                        break
            if current_score > best_score:
                best_set, best_score = current, current_score

        self._instruction = (
            render_complement(set(best_set), salt="opro") if best_set else ""
        )
        return self._instruction

    def _neighbors(
        self, current: frozenset[str], names: list[str]
    ) -> itertools.chain:
        """Add-one and remove-one moves in the directive-set space."""
        additions = (
            current | {name}
            for name in names
            if name not in current and len(current) < self.max_directives
        )
        removals = (current - {name} for name in sorted(current))
        return itertools.chain(additions, removals)

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        return prompt_text, self.instruction or None

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="opro",
            needs_human_labor=True,  # needs a labelled training set per task
            llm_agnostic=False,
            task_agnostic=False,
            training_examples=None,  # excluded from Figure 7, as in the paper
        )
