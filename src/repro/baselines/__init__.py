"""APE baselines the paper compares against (Tables 1-3, Figure 7)."""

from repro.baselines.ape_zhou import ApeInduction
from repro.baselines.base import ApeMethod, FlexibilityProfile, NoApe
from repro.baselines.bpo import BpoModel, build_bpo_preference_corpus
from repro.baselines.cot import ZeroShotCot
from repro.baselines.dpo import DpoComparator
from repro.baselines.opro import OproOptimizer
from repro.baselines.ppo import PpoComparator
from repro.baselines.protegi import ProtegiOptimizer

__all__ = [
    "ApeInduction",
    "ApeMethod",
    "FlexibilityProfile",
    "NoApe",
    "BpoModel",
    "build_bpo_preference_corpus",
    "ZeroShotCot",
    "DpoComparator",
    "OproOptimizer",
    "PpoComparator",
    "ProtegiOptimizer",
]
