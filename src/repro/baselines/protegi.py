"""ProTeGi / APO — automatic prompt optimization with "textual gradients"
and beam search (Pryzant et al. 2023).

APO critiques a candidate instruction against failures on training data
(the "gradient"), expands the candidates that fix the most failures, and
keeps a beam of the best.  The stand-in computes the gradient exactly the
way the metaphor describes: for each beam candidate, find the *needs most
often missed* by the target model's responses on the training prompts, and
expand the candidate with directives for them.

Like OPRO it requires labelled per-task data and tunes for one model —
hence the ✗/✗ flexibility row in Table 3.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.baselines.base import ApeMethod, FlexibilityProfile
from repro.core.golden import render_complement
from repro.errors import NotFittedError
from repro.llm.engine import SimulatedLLM
from repro.world.prompts import SyntheticPrompt
from repro.world.quality import assess_response

__all__ = ["ProtegiOptimizer"]


class ProtegiOptimizer(ApeMethod):
    """Beam-search prompt optimizer driven by miss-frequency gradients."""

    name = "protegi"

    def __init__(
        self,
        target_model: str = "gpt-3.5-turbo-1106",
        beam_width: int = 3,
        n_steps: int = 3,
        max_directives: int = 3,
        seed: int = 29,
    ):
        if beam_width < 1 or n_steps < 1:
            raise ValueError("beam_width and n_steps must be >= 1")
        self._engine = SimulatedLLM(target_model, seed=seed)
        self.beam_width = beam_width
        self.n_steps = n_steps
        self.max_directives = max_directives
        self.seed = int(seed)
        self._instruction: str | None = None

    @property
    def instruction(self) -> str:
        if self._instruction is None:
            raise NotFittedError("ProtegiOptimizer used before optimize()")
        return self._instruction

    def _score_and_gradient(
        self, aspects: frozenset[str], train_prompts: list[SyntheticPrompt]
    ) -> tuple[float, Counter[str]]:
        """Mean quality plus the counter of needs the responses missed."""
        instruction = render_complement(set(aspects), salt="protegi") if aspects else None
        missed: Counter[str] = Counter()
        scores = []
        for prompt in train_prompts:
            response = self._engine.respond(prompt.text, supplement=instruction)
            qa = assess_response(prompt, response)
            scores.append(qa.score)
            missed.update(qa.missed_needs)
        return float(np.mean(scores)), missed

    def optimize(self, train_prompts: list[SyntheticPrompt]) -> str:
        """Beam search: expand each candidate along its top missed needs."""
        if not train_prompts:
            raise ValueError("ProTeGi needs a non-empty training set")
        beam: list[frozenset[str]] = [frozenset()]
        scored: dict[frozenset[str], float] = {}
        for _ in range(self.n_steps):
            expansions: set[frozenset[str]] = set(beam)
            for candidate in beam:
                score, missed = self._score_and_gradient(candidate, train_prompts)
                scored[candidate] = score
                if len(candidate) >= self.max_directives:
                    continue
                for aspect, _count in missed.most_common(2):
                    expansions.add(candidate | {aspect})
            for candidate in expansions:
                if candidate not in scored:
                    scored[candidate], _ = self._score_and_gradient(
                        candidate, train_prompts
                    )
            beam = sorted(expansions, key=lambda c: -scored[c])[: self.beam_width]
        best = max(beam, key=lambda c: scored[c])
        self._instruction = render_complement(set(best), salt="protegi") if best else ""
        return self._instruction

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        return prompt_text, self.instruction or None

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="protegi",
            needs_human_labor=True,
            llm_agnostic=False,
            task_agnostic=False,
            training_examples=None,
        )
