"""Run manifests: a verifiable fingerprint for every experiment run.

A reproduction's core promise is "same inputs, same numbers".  The manifest
captures everything the numbers depend on — package version, seed, scale
configuration, and content digests of the derived artifacts — so two runs
can be compared mechanically and a published table can be traced to the
exact configuration that produced it.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.context import ExperimentContext
from repro.utils.io import to_jsonable

__all__ = ["RunManifest", "build_manifest", "fingerprint"]


def fingerprint(payload: object) -> str:
    """Stable short digest of any JSON-serialisable payload."""
    canonical = json.dumps(to_jsonable(payload), sort_keys=True, ensure_ascii=False)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """The reproducibility record of one experiment context."""

    package_version: str
    python_version: str
    seed: int
    scale: dict
    dataset_fingerprint: str
    dataset_size: int
    config_fingerprint: str

    def matches(self, other: "RunManifest") -> bool:
        """Whether two runs are numerically interchangeable."""
        return (
            self.config_fingerprint == other.config_fingerprint
            and self.dataset_fingerprint == other.dataset_fingerprint
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(to_jsonable(self), indent=2, sort_keys=True), encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(**data)


def build_manifest(ctx: ExperimentContext) -> RunManifest:
    """Fingerprint a context's configuration and its curated dataset."""
    import repro

    scale = {
        "n_corpus_prompts": ctx.scale.n_corpus_prompts,
        "arena_suite_size": ctx.scale.arena_suite_size,
        "alpaca_suite_size": ctx.scale.alpaca_suite_size,
        "human_eval_per_scenario": ctx.scale.human_eval_per_scenario,
    }
    config_fp = fingerprint({"seed": ctx.seed, "scale": scale, "version": repro.__version__})
    dataset = ctx.curated_dataset
    dataset_fp = fingerprint(
        [(p.prompt_text, p.complement_text) for p in dataset]
    )
    return RunManifest(
        package_version=repro.__version__,
        python_version=platform.python_version(),
        seed=ctx.seed,
        scale=scale,
        dataset_fingerprint=dataset_fp,
        dataset_size=len(dataset),
        config_fingerprint=config_fp,
    )
