"""Table 5 — ablation: PAS trained with vs without selection/regeneration.

Both PAS models share the base model and the upstream prompt collection;
the only difference is whether Algorithm 1's critic loop ran.  The paper
reports a 3.8-point average drop without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import TARGET_MODELS, ExperimentContext
from repro.experiments.reporting import ascii_table, format_delta
from repro.experiments.table1 import ArmScore
from repro.utils.stats import mean

__all__ = ["Table5Result", "run", "render"]


@dataclass
class Table5Result:
    rows: list[ArmScore] = field(default_factory=list)
    curated_label_quality: float = 0.0
    raw_label_quality: float = 0.0

    def method_rows(self, method: str) -> list[ArmScore]:
        return [r for r in self.rows if r.method == method]

    def method_average(self, method: str, metric: str = "average") -> float:
        return mean([getattr(r, metric) for r in self.method_rows(method)])

    @property
    def ablation_drop(self) -> float:
        """Average points lost by removing selection + regeneration."""
        return self.method_average("pas") - self.method_average("pas-wo-selection")


def run(ctx: ExperimentContext) -> Table5Result:
    result = Table5Result(
        curated_label_quality=ctx.curated_dataset.mean_label_quality(),
        raw_label_quality=ctx.raw_dataset.mean_label_quality(),
    )
    for method in (ctx.method_pas(), ctx.method_pas_uncurated()):
        for model in TARGET_MODELS:
            scores = ctx.evaluate_arm(model, method)
            result.rows.append(
                ArmScore(
                    model=model,
                    method=method.name,
                    arena_hard=scores["arena_hard"],
                    alpaca_eval=scores["alpaca_eval"],
                    alpaca_eval_lc=scores["alpaca_eval_lc"],
                    average=scores["average"],
                )
            )
    return result


def render(result: Table5Result) -> str:
    headers = ["Main Model", "PAS-model", "Arena-hard", "Alpaca-Eval 2.0", "Alpaca-Eval 2.0 (LC)", "Average"]
    rows: list[list[object]] = []
    pas_avg = {r.model: r.average for r in result.method_rows("pas")}
    for method, label in (("pas", "PAS"), ("pas-wo-selection", "wo selection")):
        for row in result.method_rows(method):
            avg_cell: object = row.average
            if method != "pas":
                avg_cell = format_delta(row.average, pas_avg[row.model])
            rows.append(
                [row.model, label, row.arena_hard, row.alpaca_eval, row.alpaca_eval_lc, avg_cell]
            )
        avg = lambda metric: mean([getattr(r, metric) for r in result.method_rows(method)])  # noqa: E731
        avg_cell = avg("average")
        if method != "pas":
            avg_cell = format_delta(avg("average"), mean(list(pas_avg.values())))
        rows.append(["AVERAGE", label, avg("arena_hard"), avg("alpaca_eval"), avg("alpaca_eval_lc"), avg_cell])
    footer = (
        f"training-label quality: curated {result.curated_label_quality:.3f} "
        f"vs raw {result.raw_label_quality:.3f}"
    )
    return ascii_table(headers, rows, title="Table 5: data selection/regeneration ablation") + "\n" + footer
