"""Per-category breakdown of PAS's gains (analysis extension).

Table 1 reports aggregates; this harness decomposes the PAS-vs-baseline
comparison by prompt category, answering *where* the complement earns its
keep.  Expectation from the mechanics (confirmed by the paper's case
studies): trap-prone categories (reasoning, math) and format/constraint
categories benefit most; chitchat benefits least.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table
from repro.judge.common import respond_with_method
from repro.utils.stats import win_rate

__all__ = ["CategoryBreakdown", "BreakdownResult", "run", "render", "BREAKDOWN_TARGET_MODEL"]

BREAKDOWN_TARGET_MODEL = "gpt-4-0613"


@dataclass(frozen=True)
class CategoryBreakdown:
    """Head-to-head PAS-vs-baseline record for one category."""

    category: str
    n_prompts: int
    pas_win_rate: float  # of PAS-vs-baseline pairwise judgements

    @property
    def pas_ahead(self) -> bool:
        return self.pas_win_rate > 50.0


@dataclass
class BreakdownResult:
    model: str = BREAKDOWN_TARGET_MODEL
    categories: list[CategoryBreakdown] = field(default_factory=list)

    def best(self) -> CategoryBreakdown:
        return max(self.categories, key=lambda c: c.pas_win_rate)

    def worst(self) -> CategoryBreakdown:
        return min(self.categories, key=lambda c: c.pas_win_rate)

    @property
    def n_categories_ahead(self) -> int:
        return sum(1 for c in self.categories if c.pas_ahead)


def run(ctx: ExperimentContext, model: str = BREAKDOWN_TARGET_MODEL) -> BreakdownResult:
    """Judge PAS directly against the no-APE arm, per category.

    Unlike the vs-reference benchmarks, this is a head-to-head: both arms
    answer the same prompt on the same engine and the judge picks.
    """
    engine = ctx.engine(model)
    judge = ctx.alpaca_eval.judge
    method_none = ctx.method_none()
    method_pas = ctx.method_pas()
    outcomes: dict[str, list[float]] = defaultdict(list)
    for prompt in ctx.alpaca_eval.suite:
        pas_response = respond_with_method(engine, method_pas, prompt)
        base_response = respond_with_method(engine, method_none, prompt)
        verdict = judge.pairwise(prompt, pas_response, base_response)
        outcomes[prompt.category].append(verdict.outcome)

    result = BreakdownResult(model=model)
    for category in sorted(outcomes):
        outs = outcomes[category]
        result.categories.append(
            CategoryBreakdown(
                category=category,
                n_prompts=len(outs),
                pas_win_rate=win_rate(outs),
            )
        )
    return result


def render(result: BreakdownResult) -> str:
    rows = [
        [c.category, c.n_prompts, c.pas_win_rate, "ahead" if c.pas_ahead else "behind"]
        for c in sorted(result.categories, key=lambda c: -c.pas_win_rate)
    ]
    table = ascii_table(
        ["Category", "n", "PAS win% vs baseline", "status"],
        rows,
        title=f"Per-category PAS gains on {result.model}",
    )
    return (
        f"{table}\n"
        f"PAS ahead in {result.n_categories_ahead}/{len(result.categories)} categories; "
        f"best: {result.best().category}, hardest: {result.worst().category}"
    )
