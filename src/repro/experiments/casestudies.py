"""Case studies (Figures 2, 8, 9) — the paper's three qualitative examples.

1. **Logic trap** — the "ten birds, one shot" question: without PAS the
   model blunders into the naive answer; PAS's complement warns about the
   trap.
2. **Ancient boiling water** — a context-bound how-to: PAS grounds the
   answer in the stated setting instead of generic advice.
3. **Blood pressure under blood loss** — a superficially answerable medical
   question: PAS requests the in-depth mechanistic analysis the asker
   actually needs.

The case prompts are hand-built members of the synthetic universe, so both
arms can be scored by the oracle and the improvement quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.world.prompts import SyntheticPrompt
from repro.world.quality import QualityAssessment, assess_response

__all__ = ["CaseStudy", "CaseStudyResult", "CASE_PROMPTS", "run", "render"]

CASE_STUDY_TARGET_MODEL = "gpt-4-0613"

CASE_PROMPTS: tuple[SyntheticPrompt, ...] = (
    SyntheticPrompt(
        uid=900001,
        text=(
            "If there are ten birds on a tree and one is shot dead, how many "
            "birds are on the ground? It sounds like a tricky question."
        ),
        category="math",
        needs=frozenset({"logic_trap", "step_by_step"}),
        topic="ten birds on a tree",
        hard=True,
    ),
    SyntheticPrompt(
        uid=900002,
        text=(
            "How do I boil water quickly in ancient times? Remember this is "
            "a historical setting."
        ),
        category="question_answering",
        needs=frozenset({"context", "step_by_step", "constraints"}),
        topic="boil water quickly",
        hard=True,
    ),
    SyntheticPrompt(
        uid=900003,
        text=(
            "Does blood pressure increase or decrease when the body loses "
            "blood? Please explain it in detail."
        ),
        category="question_answering",
        needs=frozenset({"depth", "structure"}),
        topic="blood pressure",
    ),
)


@dataclass(frozen=True)
class CaseStudy:
    """One case: both arms' texts and their oracle assessments."""

    title: str
    prompt: SyntheticPrompt
    complement: str
    response_without: str
    response_with: str
    assessment_without: QualityAssessment
    assessment_with: QualityAssessment

    @property
    def improvement(self) -> float:
        return self.assessment_with.score - self.assessment_without.score


@dataclass
class CaseStudyResult:
    cases: list[CaseStudy] = field(default_factory=list)

    @property
    def mean_improvement(self) -> float:
        if not self.cases:
            return 0.0
        return sum(c.improvement for c in self.cases) / len(self.cases)


_TITLES = ("Case 1: logic trap", "Case 2: ancient boiling water", "Case 3: blood loss")


def run(ctx: ExperimentContext) -> CaseStudyResult:
    engine = ctx.engine(CASE_STUDY_TARGET_MODEL)
    pas = ctx.pas
    result = CaseStudyResult()
    for title, prompt in zip(_TITLES, CASE_PROMPTS):
        complement = pas.augment(prompt.text)
        without = engine.respond(prompt.text)
        with_pas = engine.respond(prompt.text, supplement=complement or None)
        result.cases.append(
            CaseStudy(
                title=title,
                prompt=prompt,
                complement=complement,
                response_without=without,
                response_with=with_pas,
                assessment_without=assess_response(prompt, without),
                assessment_with=assess_response(prompt, with_pas),
            )
        )
    return result


def render(result: CaseStudyResult) -> str:
    blocks = []
    for case in result.cases:
        blocks.append(
            "\n".join(
                [
                    f"=== {case.title} ===",
                    f"User: {case.prompt.text}",
                    f"PAS complement: {case.complement or '(none)'}",
                    f"--- without PAS (score {case.assessment_without.score:.2f}, "
                    f"flaws {case.assessment_without.flaw_count}) ---",
                    case.response_without,
                    f"--- with PAS (score {case.assessment_with.score:.2f}, "
                    f"flaws {case.assessment_with.flaw_count}) ---",
                    case.response_with,
                    f"improvement: {case.improvement:+.2f}",
                ]
            )
        )
    blocks.append(f"mean improvement: {result.mean_improvement:+.2f}")
    return "\n\n".join(blocks)
