"""Table-5-style ablation of the adaptive augmentation policy.

Table 5 ablates the *training* loop (selection/regeneration on vs off);
this experiment ablates the *serving* loop: for each workload family,
what fraction of prompts does each serving mode win against the
no-augment control, as judged by the LLM judge?

Three arms per family:

* **static** — plain PAS: the one trained complement, always;
* **adaptive** — the :class:`~repro.policy.AugmentationPolicy` bandit,
  after a learning phase over the family's traffic, serving its
  exploit-only choice per ``(category, tenant)`` context;
* **none** — the raw prompt (the pairwise control both others are judged
  against, so its own win-rate is 0.5 by construction and isn't a row).

Workload families stress the policy differently: ``clean`` traffic cues
every need honestly (static PAS is near-optimal — adaptive should match
it, not beat it); ``misleading`` traffic plants wrong-aspect cues at a
high rate; ``sparse`` traffic under-cues, leaving the predictor little
signal either way; ``chatter`` is no-needs smalltalk — the junk the
paper's collection pipeline filters out of *training* still arrives at
*serving* time, and for it every followed directive is pure spurious
effort, so the winning strategy is to switch augmentation off
(``none``/``subset``).  That last family is where adaptive beats static
outright: the bandit learns per category that this traffic scores higher
raw.

The headline number is ``uplift`` — the best family's (adaptive win-rate
− static win-rate) — gated ``>= 0`` in CI as ``policy.uplift``: learning
which strategy to serve must never lose to serving the static one blindly.

Everything is seed-pure (prompt populations, simulated targets, judge
noise, bandit draws), so two runs at one seed produce identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table
from repro.judge.judge import JudgeConfig, LlmJudge
from repro.llm.engine import SimulatedLLM
from repro.policy import AugmentationPolicy, PolicyConfig
from repro.world.prompts import PromptFactory

__all__ = [
    "WORKLOAD_FAMILIES",
    "FamilyResult",
    "PolicyAblationResult",
    "run",
    "run_ablation",
    "render",
]

#: ``name -> (cue_rate, misleading_cue_rate, junk_rate)`` per family.
WORKLOAD_FAMILIES: dict[str, tuple[float, float, float]] = {
    "clean": (0.95, 0.0, 0.0),
    "misleading": (0.90, 0.60, 0.0),
    "sparse": (0.25, 0.10, 0.0),
    "chatter": (0.0, 0.0, 1.0),
}

#: The target model the ablation serves (mid-tier: enough headroom for
#: complements to matter, enough error rate for bad ones to hurt).
TARGET_MODEL = "gpt-3.5-turbo-1106"


@dataclass(frozen=True)
class FamilyResult:
    """One workload family's learned-vs-static outcome."""

    family: str
    n_learn: int
    n_eval: int
    win_adaptive: float  # judged win-rate vs the no-augment control
    win_static: float
    arm_shares: dict[str, float] = field(default_factory=dict)

    @property
    def uplift(self) -> float:
        return self.win_adaptive - self.win_static


@dataclass
class PolicyAblationResult:
    rows: list[FamilyResult] = field(default_factory=list)
    seed: int = 0

    @property
    def uplift(self) -> float:
        """The headline gate: the best family's adaptive-minus-static."""
        return max(row.uplift for row in self.rows)

    @property
    def best_family(self) -> str:
        return max(self.rows, key=lambda row: (row.uplift, row.family)).family

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "uplift": self.uplift,
            "best_family": self.best_family,
            "families": {
                row.family: {
                    "win_adaptive": row.win_adaptive,
                    "win_static": row.win_static,
                    "family_uplift": row.uplift,
                    "arm_shares": dict(sorted(row.arm_shares.items())),
                }
                for row in self.rows
            },
        }


def _win_rate(judge: LlmJudge, graded: list[tuple]) -> float:
    """Mean pairwise outcome of (prompt, response, control) triples."""
    outcomes = [
        judge.pairwise(prompt, response, control).outcome
        for prompt, response, control in graded
    ]
    return float(np.mean(outcomes))


def run_ablation(
    pas,
    *,
    seed: int = 0,
    n_learn: int = 360,
    n_eval: int = 120,
    target_model: str = TARGET_MODEL,
    families: dict[str, tuple[float, float, float]] | None = None,
) -> PolicyAblationResult:
    """The ablation proper, from any trained PAS model.

    Per family: generate a seed-pure prompt population, run the policy's
    serve→judge→select loop over ``n_learn`` serves (epsilon-greedy
    exploration on the logical clock), then evaluate ``n_eval`` held-out
    prompts with exploration off, judging each arm's response pairwise
    against the no-augment control.
    """
    families = WORKLOAD_FAMILIES if families is None else families
    llm = SimulatedLLM(target_model, seed=seed)
    judge = LlmJudge(JudgeConfig(seed=seed))
    result = PolicyAblationResult(seed=seed)
    for family, (cue_rate, misleading_cue_rate, junk_rate) in sorted(families.items()):
        factory = PromptFactory(rng=np.random.default_rng(seed * 7919 + len(family)))
        prompts = [
            factory.make_junk()
            if factory.rng.random() < junk_rate
            else factory.make_prompt(
                cue_rate=cue_rate, misleading_cue_rate=misleading_cue_rate
            )
            for _ in range(n_learn + n_eval)
        ]
        learn, held_out = prompts[:n_learn], prompts[n_learn:]
        policy = AugmentationPolicy(
            pas,
            PolicyConfig(enabled=True, judge_seed=seed, seed=seed, epsilon=0.2),
            corpus=prompts,
            judge=judge,
        )
        # -- learning phase: the online loop the gateway runs ----------- #
        for tick, prompt in enumerate(learn):
            context = policy.context_for(prompt.text, family)
            strategy = policy.select(context, tick)
            complement = policy.complement_for(prompt.text, strategy)
            response = llm.respond(prompt.text, complement)
            policy.observe(prompt.text, context, strategy, complement, response)
        # -- evaluation phase: exploit only, judged against the control - #
        adaptive_graded, static_graded = [], []
        shares: dict[str, int] = {}
        for prompt in held_out:
            context = policy.context_for(prompt.text, family)
            strategy = policy.bandit.best_arm(context)
            shares[strategy] = shares.get(strategy, 0) + 1
            candidates = policy.candidates(prompt.text)
            control = llm.respond(prompt.text, "")
            adaptive_graded.append(
                (prompt, llm.respond(prompt.text, candidates.complement_for(strategy)), control)
            )
            static_graded.append(
                (prompt, llm.respond(prompt.text, candidates.complement_for("static")), control)
            )
        result.rows.append(
            FamilyResult(
                family=family,
                n_learn=n_learn,
                n_eval=n_eval,
                win_adaptive=_win_rate(judge, adaptive_graded),
                win_static=_win_rate(judge, static_graded),
                arm_shares={
                    arm: count / len(held_out) for arm, count in sorted(shares.items())
                },
            )
        )
    return result


def run(ctx: ExperimentContext) -> PolicyAblationResult:
    scale = ctx.scale
    n_eval = max(40, scale.n_eval_prompts if hasattr(scale, "n_eval_prompts") else 80)
    return run_ablation(ctx.pas, seed=ctx.seed, n_eval=n_eval)


def render(result: PolicyAblationResult) -> str:
    rows = []
    for row in result.rows:
        dominant = max(row.arm_shares.items(), key=lambda kv: kv[1])[0]
        rows.append(
            [
                row.family,
                row.win_adaptive,
                row.win_static,
                f"{row.uplift:+.3f}",
                dominant,
            ]
        )
    table = ascii_table(
        ["Workload family", "Adaptive win-rate", "Static win-rate", "Uplift", "Learned arm"],
        rows,
        title="Policy ablation: judged win-rate vs no-augment control",
    )
    return (
        f"{table}\n"
        f"headline uplift (best family, gated >= 0): {result.uplift:+.3f} "
        f"[{result.best_family}]\n"
    )
