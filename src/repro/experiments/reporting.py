"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_table", "format_delta", "bar_chart"]


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table.

    Cells are stringified; floats get two decimals.  Column widths adapt to
    content.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    parts = []
    if title:
        parts.append(title)
    parts.extend([sep, line(list(headers)), sep])
    parts.extend(line(row) for row in str_rows)
    parts.append(sep)
    return "\n".join(parts)


def format_delta(value: float, reference: float) -> str:
    """``"61.20 (+4.30)"``-style cell used throughout Tables 1/2/5."""
    delta = value - reference
    sign = "+" if delta >= 0 else ""
    return f"{value:.2f} ({sign}{delta:.2f})"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal ascii bar chart (used by the figure harnesses)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return title or ""
    peak = max(max(values), 1e-12)
    label_w = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{str(label).ljust(label_w)} | {bar} {value:g}{unit}")
    return "\n".join(lines)
