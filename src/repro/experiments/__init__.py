"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes ``run(ctx) -> <Result>`` and ``render(result) -> str``;
``repro.experiments.runner`` is the CLI that ties them together.  The shared
:class:`~repro.experiments.context.ExperimentContext` builds the expensive
artifacts (datasets, PAS models, benchmark suites) once per run.
"""

from repro.experiments.context import ExperimentContext, ScaleConfig

__all__ = ["ExperimentContext", "ScaleConfig"]
