"""Table 1 — PAS vs BPO vs no-APE across six target LLMs.

The paper's headline comparison: for each target model, evaluate the three
method arms on Arena-Hard, AlpacaEval 2.0, and AlpacaEval 2.0 (LC), then
report per-model scores, per-arm averages, and the PAS deltas over both the
baseline (PAS-None) and BPO (PAS-BPO).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import TARGET_MODELS, ExperimentContext
from repro.experiments.reporting import ascii_table, format_delta
from repro.utils.stats import mean

__all__ = ["ArmScore", "Table1Result", "run", "render"]

_METRICS = ("arena_hard", "alpaca_eval", "alpaca_eval_lc", "average")


@dataclass(frozen=True)
class ArmScore:
    """One (model, method) row of the table."""

    model: str
    method: str
    arena_hard: float
    alpaca_eval: float
    alpaca_eval_lc: float
    average: float


@dataclass
class Table1Result:
    """All rows plus per-method averages."""

    rows: list[ArmScore] = field(default_factory=list)

    def method_rows(self, method: str) -> list[ArmScore]:
        return [r for r in self.rows if r.method == method]

    def method_average(self, method: str, metric: str = "average") -> float:
        return mean([getattr(r, metric) for r in self.method_rows(method)])

    @property
    def pas_gain_over_none(self) -> float:
        return self.method_average("pas") - self.method_average("none")

    @property
    def pas_gain_over_bpo(self) -> float:
        return self.method_average("pas") - self.method_average("bpo")


def run(ctx: ExperimentContext) -> Table1Result:
    """Evaluate none / BPO / PAS on every target model."""
    methods = [ctx.method_none(), ctx.bpo, ctx.method_pas()]
    result = Table1Result()
    for method in methods:
        for model in TARGET_MODELS:
            scores = ctx.evaluate_arm(model, method)
            result.rows.append(
                ArmScore(
                    model=model,
                    method=method.name,
                    arena_hard=scores["arena_hard"],
                    alpaca_eval=scores["alpaca_eval"],
                    alpaca_eval_lc=scores["alpaca_eval_lc"],
                    average=scores["average"],
                )
            )
    return result


def render(result: Table1Result) -> str:
    """Paper-layout text table, including the (+delta) columns."""
    headers = ["Main Model", "APE-model", "Arena-hard", "Alpaca-Eval 2.0", "Alpaca-Eval 2.0 (LC)", "Average"]
    table_rows: list[list[object]] = []
    baseline_avg = {r.model: r.average for r in result.method_rows("none")}
    bpo_avg = {r.model: r.average for r in result.method_rows("bpo")}

    for method, label in (("none", "None"), ("bpo", "BPO"), ("pas", "PAS (vs None)"), ("pas", "PAS (vs BPO)")):
        reference = baseline_avg if label.endswith("None)") else bpo_avg
        for row in result.method_rows(method):
            avg_cell: object = row.average
            if method == "pas":
                avg_cell = format_delta(row.average, reference[row.model])
            table_rows.append(
                [row.model, label, row.arena_hard, row.alpaca_eval, row.alpaca_eval_lc, avg_cell]
            )
        avg_of = lambda metric: mean([getattr(r, metric) for r in result.method_rows(method)])  # noqa: E731
        avg_cell = avg_of("average")
        if method == "pas":
            ref_mean = mean(list(reference.values()))
            avg_cell = format_delta(avg_of("average"), ref_mean)
        table_rows.append(
            ["AVERAGE", label, avg_of("arena_hard"), avg_of("alpaca_eval"), avg_of("alpaca_eval_lc"), avg_cell]
        )
    return ascii_table(headers, table_rows, title="Table 1: PAS vs BPO vs no-APE")
