"""Table 4 — human evaluation of PAS vs no-PAS across eight scenarios.

For each scenario suite, both arms answer every prompt with the strongest
target model; the annotator panel then produces the full-mark proportion,
average score, and availability proportion per arm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table, format_delta
from repro.humaneval.metrics import ScenarioMetrics, scenario_metrics
from repro.humaneval.panel import AnnotatorPanel
from repro.judge.common import respond_with_method
from repro.utils.stats import mean

__all__ = ["Table4Result", "run", "render", "HUMAN_EVAL_TARGET_MODEL"]

HUMAN_EVAL_TARGET_MODEL = "qwen2-72b-chat"


@dataclass
class Table4Result:
    baseline: list[ScenarioMetrics] = field(default_factory=list)
    pas: list[ScenarioMetrics] = field(default_factory=list)

    def average_gain(self, metric: str) -> float:
        base = mean([getattr(m, metric) for m in self.baseline])
        with_pas = mean([getattr(m, metric) for m in self.pas])
        return with_pas - base


def run(ctx: ExperimentContext, panel: AnnotatorPanel | None = None) -> Table4Result:
    """Answer each scenario suite with and without PAS; rate with the panel."""
    panel = panel or AnnotatorPanel(seed=ctx.seed)
    engine = ctx.engine(HUMAN_EVAL_TARGET_MODEL)
    method_none = ctx.method_none()
    method_pas = ctx.method_pas()
    result = Table4Result()
    for scenario, suite in ctx.human_eval_suites.items():
        prompts = list(suite)
        base_responses = [respond_with_method(engine, method_none, p) for p in prompts]
        pas_responses = [respond_with_method(engine, method_pas, p) for p in prompts]
        result.baseline.append(
            scenario_metrics(panel, prompts, base_responses, scenario=scenario)
        )
        result.pas.append(
            scenario_metrics(panel, prompts, pas_responses, scenario=scenario)
        )
    return result


def render(result: Table4Result) -> str:
    headers = [
        "Benchmark",
        "Full Mark %",
        "Avg Score",
        "Availability %",
        "Full Mark % (PAS)",
        "Avg Score (PAS)",
        "Availability % (PAS)",
    ]
    rows: list[list[object]] = []
    for base, pas in zip(result.baseline, result.pas):
        rows.append(
            [
                base.scenario,
                base.full_mark_pct,
                base.average_score,
                base.availability_pct,
                format_delta(pas.full_mark_pct, base.full_mark_pct),
                format_delta(pas.average_score, base.average_score),
                format_delta(pas.availability_pct, base.availability_pct),
            ]
        )
    rows.append(
        [
            "AVERAGE",
            mean([m.full_mark_pct for m in result.baseline]),
            mean([m.average_score for m in result.baseline]),
            mean([m.availability_pct for m in result.baseline]),
            format_delta(
                mean([m.full_mark_pct for m in result.pas]),
                mean([m.full_mark_pct for m in result.baseline]),
            ),
            format_delta(
                mean([m.average_score for m in result.pas]),
                mean([m.average_score for m in result.baseline]),
            ),
            format_delta(
                mean([m.availability_pct for m in result.pas]),
                mean([m.availability_pct for m in result.baseline]),
            ),
        ]
    )
    return ascii_table(headers, rows, title="Table 4: human evaluation, PAS vs non-PAS")
