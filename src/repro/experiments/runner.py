"""Command-line entry point: regenerate any table or figure.

Examples::

    pas-repro --experiment table1 --scale quick
    pas-repro --experiment all --scale full --seed 0 --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    breakdown,
    casestudies,
    fig1b,
    fig6,
    fig7,
    policy_ablation,
    significance,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.context import ExperimentContext, ScaleConfig
from repro.utils.io import dump_jsonl, to_jsonable

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

EXPERIMENTS = {
    "table1": (table1.run, table1.render),
    "table2": (table2.run, table2.render),
    "table3": (table3.run, table3.render),
    "table4": (table4.run, table4.render),
    "table5": (table5.run, table5.render),
    "fig1b": (fig1b.run, fig1b.render),
    "fig6": (fig6.run, fig6.render),
    "fig7": (fig7.run, fig7.render),
    "casestudies": (casestudies.run, casestudies.render),
    "significance": (significance.run, significance.render),
    "breakdown": (breakdown.run, breakdown.render),
    "policy": (policy_ablation.run, policy_ablation.render),
}


def run_experiment(name: str, ctx: ExperimentContext) -> tuple[object, str]:
    """Run one experiment by name; returns (result object, rendered text)."""
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {name!r}; choose from: {known}")
    run_fn, render_fn = EXPERIMENTS[name]
    result = run_fn(ctx)
    return result, render_fn(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pas-repro",
        description="Regenerate the PAS paper's tables and figures.",
    )
    parser.add_argument(
        "--experiment",
        default="all",
        help="table1..table5, fig1b, fig6, fig7, casestudies, or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="full",
        help="quick = small corpora/suites for smoke runs",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSONL result dumps (optional)",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write a single consolidated markdown report to this file",
    )
    parser.add_argument(
        "--save-dataset",
        type=Path,
        default=None,
        help="also save the curated prompt-complementary dataset (JSONL)",
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        help="write the run's reproducibility manifest (JSON)",
    )
    args = parser.parse_args(argv)

    scale = ScaleConfig.quick() if args.scale == "quick" else ScaleConfig.full()
    ctx = ExperimentContext(scale=scale, seed=args.seed)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    if args.save_dataset is not None:
        n_saved = ctx.curated_dataset.save(args.save_dataset)
        print(f"saved {n_saved} pairs to {args.save_dataset}\n")

    if args.manifest is not None:
        from repro.manifest import build_manifest

        manifest_path = build_manifest(ctx).save(args.manifest)
        print(f"manifest written to {manifest_path}\n")

    report_sections: list[str] = []
    for name in names:
        started = time.perf_counter()
        result, text = run_experiment(name, ctx)
        elapsed = time.perf_counter() - started
        print(text)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
        if args.out is not None:
            dump_jsonl([to_jsonable(result)], args.out / f"{name}.jsonl")
        report_sections.append(
            f"## {name}\n\n```\n{text}\n```\n\n*({elapsed:.1f}s)*\n"
        )
    if args.report is not None:
        header = (
            "# PAS reproduction report\n\n"
            f"scale={args.scale} seed={args.seed}\n\n"
        )
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(header + "\n".join(report_sections), encoding="utf-8")
        print(f"report written to {args.report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
