"""Shared experiment context: build expensive artifacts once, reuse across
every table and figure harness.

All artifacts are lazily constructed and cached.  The same seed plus the
same :class:`ScaleConfig` reproduces every number exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.baselines.base import ApeMethod, NoApe
from repro.baselines.bpo import BpoModel
from repro.core.pas import PasModel
from repro.core.plug import PasApe
from repro.judge.alpaca_eval import AlpacaEvalBenchmark
from repro.judge.arena_hard import ArenaHardBenchmark
from repro.judge.suites import (
    BenchmarkSuite,
    build_alpaca_suite,
    build_arena_hard_suite,
    build_human_eval_suite,
)
from repro.llm.engine import SimulatedLLM
from repro.llm.profiles import TARGET_MODELS
from repro.pipeline.collect import PromptCollector
from repro.pipeline.dataset import PromptPairDataset
from repro.pipeline.generate import GenerationConfig, PairGenerator
from repro.world.prompts import CorpusConfig, PromptFactory

__all__ = ["ScaleConfig", "ExperimentContext", "TARGET_MODELS"]


@dataclass(frozen=True)
class ScaleConfig:
    """Experiment sizes.

    ``quick`` keeps CI / pytest-benchmark runs in seconds-to-a-minute;
    ``full`` is the EXPERIMENTS.md configuration.
    """

    n_corpus_prompts: int = 1600
    arena_suite_size: int = 150
    alpaca_suite_size: int = 200
    human_eval_per_scenario: int = 25

    @classmethod
    def quick(cls) -> "ScaleConfig":
        return cls(
            n_corpus_prompts=700,
            arena_suite_size=90,
            alpaca_suite_size=120,
            human_eval_per_scenario=10,
        )

    @classmethod
    def full(cls) -> "ScaleConfig":
        return cls()


class ExperimentContext:
    """Lazily built shared artifacts for the experiment harnesses."""

    def __init__(self, scale: ScaleConfig | None = None, seed: int = 0):
        self.scale = scale or ScaleConfig.full()
        self.seed = int(seed)
        self._engines: dict[str, SimulatedLLM] = {}

    # -------------------------------------------------------------- #
    # data pipeline artifacts
    # -------------------------------------------------------------- #

    def _build_dataset(self, curate: bool) -> PromptPairDataset:
        factory = PromptFactory(rng=np.random.default_rng(self.seed))
        corpus = factory.make_corpus(
            CorpusConfig(n_prompts=self.scale.n_corpus_prompts)
        )
        collector = PromptCollector(seed=self.seed)
        collected = collector.collect(corpus)
        generator = PairGenerator(config=GenerationConfig(curate=curate))
        return generator.build_dataset(collected.selected)

    @cached_property
    def curated_dataset(self) -> PromptPairDataset:
        """The §3.2 dataset with selection + regeneration on."""
        return self._build_dataset(curate=True)

    @cached_property
    def raw_dataset(self) -> PromptPairDataset:
        """The ablation dataset: same pipeline, no selection/regeneration."""
        return self._build_dataset(curate=False)

    # -------------------------------------------------------------- #
    # models and methods
    # -------------------------------------------------------------- #

    @cached_property
    def pas(self) -> PasModel:
        """The main PAS model (Qwen2-7B base, curated data) — Table 1."""
        return PasModel(base_model="qwen2-7b-chat", seed=self.seed).train(
            self.curated_dataset
        )

    @cached_property
    def pas_llama_base(self) -> PasModel:
        """PAS on BPO's base model (LLaMA-2-7B) — Table 2."""
        return PasModel(base_model="llama-2-7b-instruct", seed=self.seed).train(
            self.curated_dataset
        )

    @cached_property
    def pas_uncurated(self) -> PasModel:
        """PAS trained without selection/regeneration — Table 5."""
        return PasModel(base_model="qwen2-7b-chat", seed=self.seed).train(
            self.raw_dataset
        )

    @cached_property
    def bpo(self) -> BpoModel:
        return BpoModel(seed=self.seed + 7)

    def method_none(self) -> ApeMethod:
        return NoApe()

    def method_pas(self) -> ApeMethod:
        return PasApe(self.pas)

    def method_pas_llama(self) -> ApeMethod:
        return PasApe(self.pas_llama_base, name="pas-llama2")

    def method_pas_uncurated(self) -> ApeMethod:
        return PasApe(self.pas_uncurated, name="pas-wo-selection")

    def engine(self, model: str) -> SimulatedLLM:
        """Target-model engine, cached per name."""
        if model not in self._engines:
            self._engines[model] = SimulatedLLM(model, seed=self.seed)
        return self._engines[model]

    # -------------------------------------------------------------- #
    # benchmarks
    # -------------------------------------------------------------- #

    @cached_property
    def arena_hard(self) -> ArenaHardBenchmark:
        suite = build_arena_hard_suite(
            self.scale.arena_suite_size, seed=self.seed + 500
        )
        return ArenaHardBenchmark(suite, seed=self.seed)

    @cached_property
    def alpaca_eval(self) -> AlpacaEvalBenchmark:
        suite = build_alpaca_suite(self.scale.alpaca_suite_size, seed=self.seed + 600)
        return AlpacaEvalBenchmark(suite, seed=self.seed)

    @cached_property
    def human_eval_suites(self) -> dict[str, BenchmarkSuite]:
        return build_human_eval_suite(
            self.scale.human_eval_per_scenario, seed=self.seed + 700
        )

    # -------------------------------------------------------------- #
    # the shared evaluation primitive
    # -------------------------------------------------------------- #

    def evaluate_arm(self, model: str, method: ApeMethod) -> dict[str, float]:
        """Run one (model, method) arm over all three §4.1 benchmarks."""
        engine = self.engine(model)
        arena = self.arena_hard.evaluate(engine, method)
        alpaca = self.alpaca_eval.evaluate(engine, method)
        average = (arena.score + alpaca.win_rate + alpaca.lc_win_rate) / 3.0
        return {
            "arena_hard": arena.score,
            "alpaca_eval": alpaca.win_rate,
            "alpaca_eval_lc": alpaca.lc_win_rate,
            "average": average,
        }
