"""Table 2 — PAS vs BPO on the *same* base model (LLaMA-2-7B-instruct).

BPO fine-tunes LLaMA-2-7B; the paper levels the field by training PAS on the
identical base and showing the data (not the base model) carries the win.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import TARGET_MODELS, ExperimentContext
from repro.experiments.reporting import ascii_table, format_delta
from repro.experiments.table1 import ArmScore
from repro.utils.stats import mean

__all__ = ["Table2Result", "run", "render"]


@dataclass
class Table2Result:
    """BPO rows and PAS-on-LLaMA-2 rows."""

    rows: list[ArmScore] = field(default_factory=list)

    def method_rows(self, method: str) -> list[ArmScore]:
        return [r for r in self.rows if r.method == method]

    def method_average(self, method: str, metric: str = "average") -> float:
        return mean([getattr(r, metric) for r in self.method_rows(method)])

    @property
    def pas_gain_over_bpo(self) -> float:
        return self.method_average("pas-llama2") - self.method_average("bpo")


def run(ctx: ExperimentContext) -> Table2Result:
    """Evaluate BPO and same-base PAS on every target model."""
    result = Table2Result()
    for method in (ctx.bpo, ctx.method_pas_llama()):
        for model in TARGET_MODELS:
            scores = ctx.evaluate_arm(model, method)
            result.rows.append(
                ArmScore(
                    model=model,
                    method=method.name,
                    arena_hard=scores["arena_hard"],
                    alpaca_eval=scores["alpaca_eval"],
                    alpaca_eval_lc=scores["alpaca_eval_lc"],
                    average=scores["average"],
                )
            )
    return result


def render(result: Table2Result) -> str:
    headers = ["Main Model", "Method", "Arena-hard", "Alpaca-Eval 2.0", "Alpaca-Eval 2.0 (LC)", "Average"]
    rows: list[list[object]] = []
    bpo_avg = {r.model: r.average for r in result.method_rows("bpo")}
    for method, label in (("bpo", "BPO"), ("pas-llama2", "PAS")):
        for row in result.method_rows(method):
            avg_cell: object = row.average
            if method != "bpo":
                avg_cell = format_delta(row.average, bpo_avg[row.model])
            rows.append(
                [row.model, label, row.arena_hard, row.alpaca_eval, row.alpaca_eval_lc, avg_cell]
            )
        avg = lambda metric: mean([getattr(r, metric) for r in result.method_rows(method)])  # noqa: E731
        avg_cell = avg("average")
        if method != "bpo":
            avg_cell = format_delta(avg("average"), mean(list(bpo_avg.values())))
        rows.append(["AVERAGE", label, avg("arena_hard"), avg("alpaca_eval"), avg("alpaca_eval_lc"), avg_cell])
    return ascii_table(headers, rows, title="Table 2: PAS vs BPO, same base model (LLaMA-2-7B)")
