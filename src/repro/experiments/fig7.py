"""Figure 7 — data-efficiency comparison (PAS vs BPO vs PPO vs DPO).

Two layers:

* the paper-scale accounting — 9k / 14k / 77k / 170k training examples and
  the ``Efficiency = Consumption_method / Consumption_PAS`` ratios (these
  are exact reproductions: they are dataset sizes, not measurements);
* a *runnable* demonstration — each method's corpus builder generates a
  scaled-down corpus (same proportions) so the numbers are attached to real
  code paths rather than constants alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.bpo import BPO_PAPER_DATA_SIZE, build_bpo_preference_corpus
from repro.baselines.dpo import DPO_PAPER_DATA_SIZE, DpoComparator
from repro.baselines.ppo import PPO_PAPER_DATA_SIZE, PpoComparator
from repro.core.pas import PAS_PAPER_DATA_SIZE
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table, bar_chart

__all__ = ["Fig7Result", "run", "render", "PAPER_DATA_SIZES"]

PAPER_DATA_SIZES: dict[str, int] = {
    "pas": PAS_PAPER_DATA_SIZE,
    "bpo": BPO_PAPER_DATA_SIZE,
    "ppo": PPO_PAPER_DATA_SIZE,
    "dpo": DPO_PAPER_DATA_SIZE,
}

#: 1 : scale-down factor used for the runnable corpus demonstration.
DEMO_SCALE = 100


@dataclass
class Fig7Result:
    paper_sizes: dict[str, int] = field(default_factory=dict)
    efficiency: dict[str, float] = field(default_factory=dict)
    demo_built: dict[str, int] = field(default_factory=dict)


def run(ctx: ExperimentContext, build_demo_corpora: bool = True) -> Fig7Result:
    """Compute efficiency ratios; optionally build the demo corpora."""
    efficiency = {
        name: size / PAPER_DATA_SIZES["pas"] for name, size in PAPER_DATA_SIZES.items()
    }
    demo_built: dict[str, int] = {}
    if build_demo_corpora:
        demo_built["pas"] = len(ctx.curated_dataset)
        demo_built["bpo"] = len(
            build_bpo_preference_corpus(
                n_pairs=BPO_PAPER_DATA_SIZE // DEMO_SCALE, seed=ctx.seed + 7
            )
        )
        demo_built["ppo"] = len(
            PpoComparator(seed=ctx.seed + 11).build_training_corpus(
                PPO_PAPER_DATA_SIZE // DEMO_SCALE
            )
        )
        demo_built["dpo"] = len(
            DpoComparator(seed=ctx.seed + 13).build_training_corpus(
                DPO_PAPER_DATA_SIZE // DEMO_SCALE
            )
        )
    return Fig7Result(
        paper_sizes=dict(PAPER_DATA_SIZES),
        efficiency=efficiency,
        demo_built=demo_built,
    )


def render(result: Fig7Result) -> str:
    chart = bar_chart(
        labels=[name.upper() for name in result.paper_sizes],
        values=[float(v) for v in result.paper_sizes.values()],
        title="Figure 7: training-data consumption (examples)",
    )
    rows = [
        [
            name.upper(),
            size,
            f"{result.efficiency[name]:.2f}x PAS",
            result.demo_built.get(name, "-"),
        ]
        for name, size in result.paper_sizes.items()
    ]
    table = ascii_table(
        ["Method", "Paper data size", "Relative consumption", "Demo corpus built"],
        rows,
    )
    return f"{chart}\n{table}"
