"""Statistical significance companion to Table 1.

The paper reports point estimates; reviewers of a reproduction want error
bars.  For every target model this harness computes, over the *paired*
Arena-Hard outcomes (every arm answers the same prompts against the same
references):

* a percentile-bootstrap 95% CI on each arm's win rate;
* a two-sided paired sign test of PAS vs the baseline and PAS vs BPO
  (ties discarded, exact binomial via scipy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as scipy_stats

from repro.experiments.context import TARGET_MODELS, ExperimentContext
from repro.experiments.reporting import ascii_table
from repro.utils.stats import bootstrap_ci

__all__ = ["PairedComparison", "SignificanceResult", "paired_sign_test", "run", "render"]


def paired_sign_test(outcomes_a: list[float], outcomes_b: list[float]) -> float:
    """Two-sided exact sign test on paired benchmark outcomes.

    Each pair contributes a sign when the two arms disagree; ties (equal
    outcomes, including judge-declared draws) carry no information and are
    discarded, per the classic sign-test construction.
    """
    if len(outcomes_a) != len(outcomes_b):
        raise ValueError("paired outcomes must align")
    wins_a = sum(1 for a, b in zip(outcomes_a, outcomes_b) if a > b)
    wins_b = sum(1 for a, b in zip(outcomes_a, outcomes_b) if b > a)
    decisive = wins_a + wins_b
    if decisive == 0:
        return 1.0
    return float(scipy_stats.binomtest(wins_a, decisive, 0.5).pvalue)


@dataclass(frozen=True)
class PairedComparison:
    """PAS-vs-arm comparison for one target model."""

    model: str
    arm: str
    pas_score: float
    arm_score: float
    pas_ci: tuple[float, float]
    arm_ci: tuple[float, float]
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


@dataclass
class SignificanceResult:
    comparisons: list[PairedComparison] = field(default_factory=list)

    def against(self, arm: str) -> list[PairedComparison]:
        return [c for c in self.comparisons if c.arm == arm]

    def n_significant(self, arm: str) -> int:
        return sum(1 for c in self.against(arm) if c.significant)


def run(ctx: ExperimentContext) -> SignificanceResult:
    """Paired Arena-Hard significance of PAS vs none and vs BPO."""
    rng = np.random.default_rng(ctx.seed + 999)
    methods = {
        "none": ctx.method_none(),
        "bpo": ctx.bpo,
        "pas": ctx.method_pas(),
    }
    result = SignificanceResult()
    for model in TARGET_MODELS:
        engine = ctx.engine(model)
        outcomes = {
            name: list(ctx.arena_hard.evaluate(engine, method).outcomes)
            for name, method in methods.items()
        }
        cis = {
            name: bootstrap_ci([100.0 * o for o in outs], rng)
            for name, outs in outcomes.items()
        }
        for arm in ("none", "bpo"):
            result.comparisons.append(
                PairedComparison(
                    model=model,
                    arm=arm,
                    pas_score=100.0 * float(np.mean(outcomes["pas"])),
                    arm_score=100.0 * float(np.mean(outcomes[arm])),
                    pas_ci=cis["pas"],
                    arm_ci=cis[arm],
                    p_value=paired_sign_test(outcomes["pas"], outcomes[arm]),
                )
            )
    return result


def render(result: SignificanceResult) -> str:
    headers = ["Model", "PAS vs", "PAS win% [95% CI]", "Arm win% [95% CI]", "sign-test p", "sig?"]
    rows = []
    for c in result.comparisons:
        rows.append(
            [
                c.model,
                c.arm,
                f"{c.pas_score:.1f} [{c.pas_ci[0]:.1f}, {c.pas_ci[1]:.1f}]",
                f"{c.arm_score:.1f} [{c.arm_ci[0]:.1f}, {c.arm_ci[1]:.1f}]",
                f"{c.p_value:.4f}",
                "yes" if c.significant else "no",
            ]
        )
    summary = (
        f"significant at 0.05: vs none {result.n_significant('none')}/6, "
        f"vs bpo {result.n_significant('bpo')}/6"
    )
    return ascii_table(headers, rows, title="Arena-Hard paired significance") + "\n" + summary
