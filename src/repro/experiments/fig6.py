"""Figure 6 — category distribution of the prompt-complementary dataset."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import bar_chart

__all__ = ["Fig6Result", "run", "render"]


@dataclass
class Fig6Result:
    counts: dict[str, int] = field(default_factory=dict)
    n_pairs: int = 0
    n_dropped: int = 0

    @property
    def n_categories(self) -> int:
        return len(self.counts)


def run(ctx: ExperimentContext) -> Fig6Result:
    dataset = ctx.curated_dataset
    counts = dict(sorted(dataset.category_distribution().items(), key=lambda kv: -kv[1]))
    return Fig6Result(counts=counts, n_pairs=len(dataset), n_dropped=dataset.n_dropped)


def render(result: Fig6Result) -> str:
    chart = bar_chart(
        labels=list(result.counts),
        values=[float(v) for v in result.counts.values()],
        title="Figure 6: prompt-complementary dataset distribution",
    )
    return (
        f"{chart}\n"
        f"total pairs: {result.n_pairs} across {result.n_categories} categories "
        f"({result.n_dropped} dropped by the critic loop)"
    )
