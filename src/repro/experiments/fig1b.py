"""Figure 1(b) — GSB win shares of PAS vs baseline per human-eval scenario."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import bar_chart
from repro.experiments.table4 import HUMAN_EVAL_TARGET_MODEL
from repro.humaneval.metrics import GsbResult, gsb
from repro.humaneval.panel import AnnotatorPanel
from repro.judge.common import respond_with_method
from repro.utils.stats import mean

__all__ = ["Fig1bResult", "run", "render"]


@dataclass
class Fig1bResult:
    scenarios: list[GsbResult] = field(default_factory=list)

    @property
    def mean_win_share(self) -> float:
        return mean([s.win_share for s in self.scenarios])


def run(ctx: ExperimentContext, panel: AnnotatorPanel | None = None) -> Fig1bResult:
    """GSB comparison per scenario (PAS arm = Good side)."""
    panel = panel or AnnotatorPanel(seed=ctx.seed)
    engine = ctx.engine(HUMAN_EVAL_TARGET_MODEL)
    method_none = ctx.method_none()
    method_pas = ctx.method_pas()
    result = Fig1bResult()
    for scenario, suite in ctx.human_eval_suites.items():
        prompts = list(suite)
        pas_responses = [respond_with_method(engine, method_pas, p) for p in prompts]
        base_responses = [respond_with_method(engine, method_none, p) for p in prompts]
        result.scenarios.append(
            gsb(panel, prompts, pas_responses, base_responses, scenario=scenario)
        )
    return result


def render(result: Fig1bResult) -> str:
    chart = bar_chart(
        labels=[s.scenario for s in result.scenarios],
        values=[round(s.win_share, 1) for s in result.scenarios],
        unit="% win",
        title="Figure 1(b): PAS win share of decisive human judgements",
    )
    detail = "\n".join(
        f"  {s.scenario}: good {s.good:.1f}% / same {s.same:.1f}% / bad {s.bad:.1f}%"
        for s in result.scenarios
    )
    return f"{chart}\n{detail}\nmean win share: {result.mean_win_share:.1f}%"
