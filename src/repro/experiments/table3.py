"""Table 3 — human labour and flexibility comparison.

The matrix is read straight off each method's
:class:`~repro.baselines.base.FlexibilityProfile`, so it cannot silently
diverge from the implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import FlexibilityProfile
from repro.baselines.bpo import BpoModel
from repro.baselines.dpo import DpoComparator
from repro.baselines.opro import OproOptimizer
from repro.baselines.ppo import PpoComparator
from repro.baselines.protegi import ProtegiOptimizer
from repro.core.pas import PAS_PAPER_DATA_SIZE
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import ascii_table

__all__ = ["Table3Result", "run", "render"]


@dataclass
class Table3Result:
    profiles: list[FlexibilityProfile] = field(default_factory=list)

    def row(self, method: str) -> FlexibilityProfile:
        for profile in self.profiles:
            if profile.method == method:
                return profile
        raise KeyError(f"no flexibility row for {method!r}")


def run(ctx: ExperimentContext) -> Table3Result:
    """Collect the Table 3 rows from live method instances.

    The optimizer baselines are instantiated but not run — their
    flexibility is a static property of the method class.
    """
    methods = [
        PpoComparator(),
        DpoComparator(),
        OproOptimizer(),
        ProtegiOptimizer(),
        ctx.bpo,
        ctx.method_pas(),
    ]
    profiles = [m.flexibility for m in methods]
    # PAS's data size in the paper-scale accounting:
    assert profiles[-1].training_examples == PAS_PAPER_DATA_SIZE
    return Table3Result(profiles=profiles)


def _tick(value: bool) -> str:
    return "yes" if value else "NO"


def render(result: Table3Result) -> str:
    headers = ["Method", "No Human Labor", "LLM-Agnostic", "Task-Agnostic"]
    rows = [
        [
            p.method.upper(),
            _tick(not p.needs_human_labor),
            _tick(p.llm_agnostic),
            _tick(p.task_agnostic),
        ]
        for p in result.profiles
    ]
    return ascii_table(headers, rows, title="Table 3: flexibility comparison")
