"""Hierarchical Navigable Small World graphs, implemented from scratch.

This is the index the paper uses to cluster prompt embeddings before
deduplication (§3.1).  The implementation follows Malkov & Yashunin (2016):

* each element is inserted at a geometrically distributed maximum layer;
* greedy search descends from the top layer to layer 0;
* ``SEARCH-LAYER`` maintains a dynamic candidate list of size ``ef``;
* neighbours are chosen with the diversity heuristic (``SELECT-NEIGHBORS-
  HEURISTIC``), which keeps the graph navigable in clustered data — the
  regime our prompt corpus is explicitly constructed to be in.

Only the features the pipeline needs are implemented (add + k-NN search);
there is no deletion.

Storage is one contiguous, preallocated ``(capacity, dim)`` array grown
geometrically, with per-row norms cached at insert time.  Every hop of
every graph routine computes its distances with a single gather plus one
BLAS matrix-vector product (:meth:`HnswIndex._distances_to`) instead of a
per-neighbour Python loop — the same kernel serves ``add``, ``search``,
``search_batch`` and ``knn_graph``, which is what makes the batched paths
bit-identical to their scalar counterparts.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import IndexError_

__all__ = ["HnswIndex"]

#: First allocation; capacity doubles whenever the table fills.
_INITIAL_CAPACITY = 64


class HnswIndex:
    """HNSW approximate nearest-neighbour index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    m:
        Target out-degree on layers > 0 (layer 0 allows ``2 * m``).
    ef_construction:
        Candidate-list width during insertion.
    ef_search:
        Default candidate-list width during queries (>= k is enforced).
    metric:
        ``"cosine"`` (distance = 1 - cosine similarity) or ``"l2"``
        (squared Euclidean).
    seed:
        Seed for the level-assignment RNG; fixes the graph shape.
    """

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 200,
        ef_search: int = 50,
        metric: str = "cosine",
        seed: int = 0,
    ):
        if dim <= 0:
            raise IndexError_(f"dim must be positive, got {dim}")
        if m < 2:
            raise IndexError_(f"m must be >= 2, got {m}")
        if ef_construction < 1 or ef_search < 1:
            raise IndexError_("ef parameters must be >= 1")
        if metric not in ("cosine", "l2"):
            raise IndexError_(f"unknown metric {metric!r}")
        self.dim = dim
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.metric = metric
        self._level_mult = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        self._vectors = np.zeros((0, dim), dtype=np.float64)
        self._norms = np.zeros(0, dtype=np.float64)
        self._count = 0
        self._keys: list[int] = []
        # _neighbors[node_id][layer] -> list of node ids
        self._neighbors: list[list[list[int]]] = []
        self._entry: int | None = None  # node id of the entry point
        self._keys_seen: set[int] = set()
        self._min_norm = math.inf  # smallest stored norm, for the fast path
        # Packed layer-0 adjacency, rebuilt lazily for read-only searches.
        self._graph_version = 0
        self._packed_version = -1
        self._packed0 = np.zeros((0, 0), dtype=np.intp)
        self._packed0_counts = np.zeros(0, dtype=np.intp)

    # ------------------------------------------------------------------ #
    # basic plumbing
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the stored vectors, insertion order."""
        view = self._vectors[: self._count]
        view.flags.writeable = False
        return view

    def _reserve(self, n: int) -> None:
        """Grow the vector table geometrically to hold ``n`` rows."""
        capacity = self._vectors.shape[0]
        if n <= capacity:
            return
        new_capacity = max(capacity, _INITIAL_CAPACITY)
        while new_capacity < n:
            new_capacity *= 2
        vectors = np.zeros((new_capacity, self.dim), dtype=np.float64)
        vectors[: self._count] = self._vectors[: self._count]
        norms = np.zeros(new_capacity, dtype=np.float64)
        norms[: self._count] = self._norms[: self._count]
        self._vectors = vectors
        self._norms = norms

    def _distances_to(
        self, query: np.ndarray, ids: Sequence[int], qnorm: float
    ) -> np.ndarray:
        """Distances from ``query`` to the stored vectors ``ids``.

        One gather plus one BLAS matrix-vector product per call.  Both the
        per-item and the batched public paths funnel through this kernel,
        so their floating-point results agree bit for bit (a GEMM over the
        whole batch would not: OpenBLAS GEMM and GEMV accumulate partial
        sums differently in the last ulp).
        """
        idx = np.asarray(ids, dtype=np.intp)
        sub = self._vectors[idx]
        if self.metric == "l2":
            diff = sub - query
            return np.einsum("ij,ij->i", diff, diff)
        dots = sub @ query
        denom = self._norms[idx] * qnorm
        if self._min_norm * qnorm >= 1e-12:
            # Every stored norm is >= _min_norm, so no denom can be
            # degenerate; skip the elementwise check (same result).
            return 1.0 - dots / denom
        near_zero = denom < 1e-12
        if near_zero.any():
            return np.where(near_zero, 1.0, 1.0 - dots / np.where(near_zero, 1.0, denom))
        return 1.0 - dots / denom

    def _query_norm(self, query: np.ndarray) -> float:
        return float(np.linalg.norm(query)) if self.metric == "cosine" else 0.0

    def _draw_level(self) -> int:
        u = float(self._rng.random())
        u = max(u, 1e-12)
        return int(-math.log(u) * self._level_mult)

    # ------------------------------------------------------------------ #
    # core graph routines
    # ------------------------------------------------------------------ #

    def _greedy_descend(
        self, query: np.ndarray, qnorm: float, curr: int, d_curr: float, layer: int
    ) -> tuple[int, float]:
        """Move to the closest neighbour until no neighbour improves."""
        while True:
            nbrs = self._neighbors[curr][layer]
            if not nbrs:
                return curr, d_curr
            dists = self._distances_to(query, nbrs, qnorm)
            best = int(np.argmin(dists))
            if dists[best] < d_curr:
                curr = nbrs[best]
                d_curr = float(dists[best])
            else:
                return curr, d_curr

    def _search_layer(
        self, query: np.ndarray, qnorm: float, entry_ids: list[int], ef: int, layer: int
    ) -> list[tuple[float, int]]:
        """Beam search on one layer; returns (distance, node_id), unsorted."""
        visited = set(entry_ids)
        entry_dists = self._distances_to(query, entry_ids, qnorm)
        # candidates: min-heap by distance; results: max-heap via negation
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []
        for i, nid in enumerate(entry_ids):
            d = float(entry_dists[i])
            heapq.heappush(candidates, (d, nid))
            heapq.heappush(results, (-d, nid))
        while candidates:
            d_cand, nid = heapq.heappop(candidates)
            d_worst = -results[0][0]
            if d_cand > d_worst and len(results) >= ef:
                break
            fresh = [nb for nb in self._neighbors[nid][layer] if nb not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            dists = self._distances_to(query, fresh, qnorm)
            for i, nb in enumerate(fresh):
                d = float(dists[i])
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, nb))
                    heapq.heappush(results, (-d, nb))
                    if len(results) > ef:
                        heapq.heappop(results)
        return [(-nd, nid) for nd, nid in results]

    def _ensure_packed(self) -> None:
        """Pack the layer-0 adjacency lists into flat arrays.

        Rebuilt lazily whenever the graph changed since the last search;
        construction keeps mutating the list-of-lists, so packing there
        would mean an O(n*m) rebuild per insert.
        """
        if self._packed_version == self._graph_version:
            return
        n = self._count
        width = max((len(self._neighbors[nid][0]) for nid in range(n)), default=0)
        rows = np.zeros((n, width), dtype=np.intp)
        counts = np.zeros(n, dtype=np.intp)
        for nid in range(n):
            nbrs = self._neighbors[nid][0]
            counts[nid] = len(nbrs)
            rows[nid, : len(nbrs)] = nbrs
        self._packed0 = rows
        self._packed0_counts = counts
        self._packed_version = self._graph_version

    def _search_layer0(
        self, query: np.ndarray, qnorm: float, entry_ids: list[int], ef: int
    ) -> list[tuple[float, int]]:
        """Layer-0 beam search over the packed adjacency (read-only paths).

        Mirrors :meth:`_search_layer` exactly — same visit order through
        the same distance kernel, so the same results bit for bit — but
        gathers neighbours from the packed arrays and tracks visited nodes
        in a boolean mask instead of a set, which is what makes the
        batched search paths fast.
        """
        rows = self._packed0
        counts = self._packed0_counts
        visited = np.zeros(self._count, dtype=bool)
        entry_idx = np.asarray(entry_ids, dtype=np.intp)
        visited[entry_idx] = True
        entry_dists = self._distances_to(query, entry_idx, qnorm)
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []
        for d, nid in zip(entry_dists.tolist(), entry_ids):
            heapq.heappush(candidates, (d, nid))
            heapq.heappush(results, (-d, nid))
        push, pop = heapq.heappush, heapq.heappop
        while candidates:
            d_cand, nid = pop(candidates)
            if d_cand > -results[0][0] and len(results) >= ef:
                break
            nbrs = rows[nid, : counts[nid]]
            fresh = nbrs[~visited[nbrs]]
            if fresh.size == 0:
                continue
            visited[fresh] = True
            dists = self._distances_to(query, fresh, qnorm)
            for d, nb in zip(dists.tolist(), fresh.tolist()):
                if len(results) < ef or d < -results[0][0]:
                    push(candidates, (d, nb))
                    push(results, (-d, nb))
                    if len(results) > ef:
                        pop(results)
        return [(-nd, nid) for nd, nid in results]

    def _select_neighbors(
        self, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Diversity heuristic: keep a candidate only if it is closer to the
        query than to every already-selected neighbour."""
        selected: list[tuple[float, int]] = []
        selected_ids: list[int] = []
        for d, nid in sorted(candidates):
            if len(selected) >= m:
                break
            if selected_ids:
                to_selected = self._distances_to(
                    self._vectors[nid], selected_ids, self._norms[nid]
                )
                if bool((to_selected < d).any()):
                    continue
            selected.append((d, nid))
            selected_ids.append(nid)
        if len(selected) < m:  # backfill with nearest remaining candidates
            chosen = set(selected_ids)
            for d, nid in sorted(candidates):
                if len(selected) >= m:
                    break
                if nid not in chosen:
                    selected.append((d, nid))
                    chosen.add(nid)
        return [nid for _, nid in selected]

    def _link(self, source: int, target: int, layer: int, cap: int) -> None:
        """Add a directed edge, shrinking with the heuristic if over capacity."""
        nbrs = self._neighbors[source][layer]
        if target == source or target in nbrs:
            return
        nbrs.append(target)
        if len(nbrs) > cap:
            dists = self._distances_to(
                self._vectors[source], nbrs, self._norms[source]
            )
            cands = list(zip(dists.tolist(), nbrs))
            self._neighbors[source][layer] = self._select_neighbors(cands, cap)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def add(self, vector: np.ndarray, key: int) -> None:
        """Insert a vector under an application-level integer key."""
        vec = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {vec.shape[0]}")
        key = int(key)
        if key in self._keys_seen:
            raise IndexError_(f"duplicate key {key}")
        self._keys_seen.add(key)

        level = self._draw_level()
        node_id = self._count
        self._reserve(node_id + 1)
        self._vectors[node_id] = vec
        self._norms[node_id] = float(np.linalg.norm(self._vectors[node_id]))
        self._min_norm = min(self._min_norm, float(self._norms[node_id]))
        self._graph_version += 1
        self._count += 1
        self._keys.append(key)
        self._neighbors.append([[] for _ in range(level + 1)])
        stored = self._vectors[node_id]
        qnorm = self._norms[node_id] if self.metric == "cosine" else 0.0

        if self._entry is None:
            self._entry = node_id
            return

        entry = self._entry
        top = len(self._neighbors[entry]) - 1

        # 1. greedy descent through layers above the new node's level
        curr = entry
        d_curr = float(self._distances_to(stored, [curr], qnorm)[0])
        for layer in range(top, level, -1):
            curr, d_curr = self._greedy_descend(stored, qnorm, curr, d_curr, layer)

        # 2. insert on each layer from min(level, top) down to 0
        entries = [curr]
        for layer in range(min(level, top), -1, -1):
            found = self._search_layer(stored, qnorm, entries, self.ef_construction, layer)
            cap = self.m0 if layer == 0 else self.m
            neighbors = self._select_neighbors(found, self.m)
            self._neighbors[node_id][layer] = list(neighbors)
            for nb in neighbors:
                self._link(nb, node_id, layer, cap)
            entries = [nid for _, nid in sorted(found)[: self.ef_construction]]

        if level > top:
            self._entry = node_id

    def add_batch(
        self, vectors: np.ndarray, keys: Iterable[int] | None = None
    ) -> None:
        """Insert many vectors at once (keys default to ``0..n-1``).

        Validates shapes once and reserves table capacity up front;
        insertion order (and therefore the graph) is identical to calling
        :meth:`add` per row.
        """
        matrix = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if matrix.shape[0] == 0:
            return
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        key_list = list(range(matrix.shape[0])) if keys is None else [int(k) for k in keys]
        if len(key_list) != matrix.shape[0]:
            raise IndexError_(
                f"got {matrix.shape[0]} vectors but {len(key_list)} keys"
            )
        self._reserve(self._count + matrix.shape[0])
        for row, key in zip(matrix, key_list):
            self.add(row, key)

    def _search_one(
        self, query: np.ndarray, qnorm: float, k: int, ef: int | None
    ) -> list[tuple[int, float]]:
        """Search with a validated query; shared by every public path."""
        assert self._entry is not None
        self._ensure_packed()
        width = max(ef if ef is not None else self.ef_search, k)
        curr = self._entry
        top = len(self._neighbors[curr]) - 1
        if top > 0:
            d_curr = float(self._distances_to(query, [curr], qnorm)[0])
            for layer in range(top, 0, -1):
                curr, d_curr = self._greedy_descend(query, qnorm, curr, d_curr, layer)
        found = self._search_layer0(query, qnorm, [curr], width)
        found.sort()
        return [(self._keys[nid], d) for d, nid in found[:k]]

    def search(
        self, query: np.ndarray, k: int, ef: int | None = None
    ) -> list[tuple[int, float]]:
        """Return up to ``k`` ``(key, distance)`` pairs, nearest first."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if self._entry is None:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {query.shape[0]}")
        return self._search_one(query, self._query_norm(query), k, ef)

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None
    ) -> list[list[tuple[int, float]]]:
        """k-NN lists for a ``(n, dim)`` query matrix, one per row.

        Bit-identical to ``[self.search(q, k, ef) for q in queries]`` —
        every row runs through the same vectorized kernel — while
        validating and converting the whole batch once.  An empty batch
        returns an empty list.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.size == 0 and matrix.ndim <= 2:
            return []
        matrix = np.atleast_2d(matrix)
        if matrix.ndim != 2:
            raise IndexError_(f"queries must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        if self._entry is None:
            return [[] for _ in range(matrix.shape[0])]
        return [
            self._search_one(row, self._query_norm(row), k, ef) for row in matrix
        ]

    def knn_graph(self, k: int, ef: int | None = None) -> dict[int, list[tuple[int, float]]]:
        """k-NN lists for every indexed element (self-match excluded).

        Queries the stored rows directly (no copies, cached norms), so the
        whole bulk pass rides the vectorized search path.
        """
        out: dict[int, list[tuple[int, float]]] = {}
        for nid in range(self._count):
            query = self._vectors[nid]
            qnorm = self._norms[nid] if self.metric == "cosine" else 0.0
            hits = self._search_one(query, qnorm, k + 1, ef)
            key = self._keys[nid]
            out[key] = [(other, d) for other, d in hits if other != key][:k]
        return out
