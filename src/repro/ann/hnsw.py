"""Hierarchical Navigable Small World graphs, implemented from scratch.

This is the index the paper uses to cluster prompt embeddings before
deduplication (§3.1).  The implementation follows Malkov & Yashunin (2016):

* each element is inserted at a geometrically distributed maximum layer;
* greedy search descends from the top layer to layer 0;
* ``SEARCH-LAYER`` maintains a dynamic candidate list of size ``ef``;
* neighbours are chosen with the diversity heuristic (``SELECT-NEIGHBORS-
  HEURISTIC``), which keeps the graph navigable in clustered data — the
  regime our prompt corpus is explicitly constructed to be in.

Only the features the pipeline needs are implemented (add + k-NN search);
there is no deletion.

Storage is one contiguous, preallocated ``(capacity, dim)`` array grown
geometrically, with per-row norms cached at insert time.  Every hop of
every graph routine computes its distances with a single gather plus one
BLAS matrix-vector product (:meth:`HnswIndex._distances_to`) instead of a
per-neighbour Python loop — the same kernel serves ``add``, ``search``,
``search_batch`` and ``knn_graph``, which is what makes the batched paths
bit-identical to their scalar counterparts.

Two result surfaces share one search core: the tuple API (``search`` /
``search_batch``, lists of ``(key, distance)`` pairs) and the array API
(:meth:`HnswIndex.search_batch_arrays`, ``(keys, dists)`` ndarrays padded
with ``-1`` / ``inf``).  The tuple lists are a thin view over the array
results, so the two never disagree — bit for bit.

``quantization="int8"`` turns on a scalar-quantised traversal kernel:
vectors are additionally stored as contiguous int8 codes with one scale
per vector, beam traversal measures distances on the codes, and the final
candidate set is re-ranked with the exact float kernel before the top-k
cut (see :meth:`HnswIndex._search_one_raw`).  Returned distances are
therefore always exact; only the *traversal order* is approximate, and
the recall tests pin it against :class:`~repro.ann.bruteforce.BruteForceIndex`.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import IndexError_

__all__ = ["HnswIndex"]

#: First allocation; capacity doubles whenever the table fills.
_INITIAL_CAPACITY = 64

#: Row-chunk size for the offline router-assignment matmul, bounding the
#: (chunk x n_centroids) score block's memory whatever the index size.
_ROUTER_ASSIGN_CHUNK = 8192


class HnswIndex:
    """HNSW approximate nearest-neighbour index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    m:
        Target out-degree on layers > 0 (layer 0 allows ``2 * m``).
    ef_construction:
        Candidate-list width during insertion.
    ef_search:
        Default candidate-list width during queries (>= k is enforced).
    metric:
        ``"cosine"`` (distance = 1 - cosine similarity) or ``"l2"``
        (squared Euclidean).
    seed:
        Seed for the level-assignment RNG; fixes the graph shape.
    quantization:
        ``"none"`` (default) or ``"int8"``.  With ``"int8"``, beam
        traversal measures distances on scalar-quantised codes (one int8
        row + one scale per vector) and the final candidate set is
        re-ranked exactly before the top-k cut.
    """

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 200,
        ef_search: int = 50,
        metric: str = "cosine",
        seed: int = 0,
        quantization: str = "none",
    ):
        if dim <= 0:
            raise IndexError_(f"dim must be positive, got {dim}")
        if m < 2:
            raise IndexError_(f"m must be >= 2, got {m}")
        if ef_construction < 1 or ef_search < 1:
            raise IndexError_("ef parameters must be >= 1")
        if metric not in ("cosine", "l2"):
            raise IndexError_(f"unknown metric {metric!r}")
        if quantization not in ("none", "int8"):
            raise IndexError_(f"unknown quantization {quantization!r}")
        self.dim = dim
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.metric = metric
        self.quantization = quantization
        self._quantized = quantization == "int8"
        self._level_mult = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        self._vectors = np.zeros((0, dim), dtype=np.float64)
        self._norms = np.zeros(0, dtype=np.float64)
        # int8 scalar quantisation: codes[i] * scales[i] ~= vectors[i].
        self._codes = np.zeros((0, dim), dtype=np.int8)
        self._code_scales = np.zeros(0, dtype=np.float64)
        self._count = 0
        self._keys: list[int] = []
        self._key_arr = np.zeros(0, dtype=np.int64)  # same keys, array view
        # _neighbors[node_id][layer] -> list of node ids
        self._neighbors: list[list[list[int]]] = []
        self._entry: int | None = None  # node id of the entry point
        self._keys_seen: set[int] = set()
        self._min_norm = math.inf  # smallest stored norm, for the fast path
        # Packed layer-0 adjacency, rebuilt lazily for read-only searches.
        self._graph_version = 0
        self._packed_version = -1
        self._packed0 = np.zeros((0, 0), dtype=np.intp)
        self._packed0_counts = np.zeros(0, dtype=np.intp)
        # Per-search visited marks: a stamp array beats allocating a fresh
        # boolean mask per query (node visited iff _visited_mark[nid] == stamp).
        self._visited_mark = np.zeros(0, dtype=np.int64)
        self._visit_stamp = 0
        # Coarse routing structure for routed scans (see _ensure_router):
        # ~sqrt(n) sampled rows act as centroids; every row is bucketed
        # under its nearest centroid.  Rebuilt lazily whenever the element
        # count changes.
        self._router_version = -1
        self._router_centroid_ids = np.zeros(0, dtype=np.intp)
        self._router_bucket_ids = np.zeros(0, dtype=np.intp)
        self._router_offsets = np.zeros(1, dtype=np.intp)
        self._router_rows = np.zeros((0, dim), dtype=np.float32)
        self._router_bias = np.zeros(0, dtype=np.float32)
        self._router_centroid_rows = np.zeros((0, dim), dtype=np.float32)
        self._router_centroid_bias = np.zeros(0, dtype=np.float32)

    # ------------------------------------------------------------------ #
    # basic plumbing
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the stored vectors, insertion order."""
        view = self._vectors[: self._count]
        view.flags.writeable = False
        return view

    def _reserve(self, n: int) -> None:
        """Grow the vector table geometrically to hold ``n`` rows."""
        capacity = self._vectors.shape[0]
        if n <= capacity:
            return
        new_capacity = max(capacity, _INITIAL_CAPACITY)
        while new_capacity < n:
            new_capacity *= 2
        vectors = np.zeros((new_capacity, self.dim), dtype=np.float64)
        vectors[: self._count] = self._vectors[: self._count]
        norms = np.zeros(new_capacity, dtype=np.float64)
        norms[: self._count] = self._norms[: self._count]
        self._vectors = vectors
        self._norms = norms
        keys = np.zeros(new_capacity, dtype=np.int64)
        keys[: self._count] = self._key_arr[: self._count]
        self._key_arr = keys
        if self._quantized:
            codes = np.zeros((new_capacity, self.dim), dtype=np.int8)
            codes[: self._count] = self._codes[: self._count]
            scales = np.zeros(new_capacity, dtype=np.float64)
            scales[: self._count] = self._code_scales[: self._count]
            self._codes = codes
            self._code_scales = scales

    def _distances_to(
        self, query: np.ndarray, ids: Sequence[int], qnorm: float
    ) -> np.ndarray:
        """Distances from ``query`` to the stored vectors ``ids``.

        One gather plus one BLAS matrix-vector product per call.  Both the
        per-item and the batched public paths funnel through this kernel,
        so their floating-point results agree bit for bit (a GEMM over the
        whole batch would not: OpenBLAS GEMM and GEMV accumulate partial
        sums differently in the last ulp).
        """
        idx = np.asarray(ids, dtype=np.intp)
        sub = self._vectors[idx]
        if self.metric == "l2":
            diff = sub - query
            return np.einsum("ij,ij->i", diff, diff)
        dots = sub @ query
        denom = self._norms[idx] * qnorm
        if self._min_norm * qnorm >= 1e-12:
            # Every stored norm is >= _min_norm, so no denom can be
            # degenerate; skip the elementwise check (same result).
            return 1.0 - dots / denom
        near_zero = denom < 1e-12
        if near_zero.any():
            return np.where(near_zero, 1.0, 1.0 - dots / np.where(near_zero, 1.0, denom))
        return 1.0 - dots / denom

    def _query_norm(self, query: np.ndarray) -> float:
        return float(np.linalg.norm(query)) if self.metric == "cosine" else 0.0

    @staticmethod
    def _quantize(vec: np.ndarray) -> tuple[np.ndarray, float]:
        """Scalar-quantise one vector: ``codes * scale ~= vec`` (codes in ±127)."""
        peak = float(np.max(np.abs(vec))) if vec.size else 0.0
        scale = peak / 127.0 if peak > 0.0 else 1.0
        return np.rint(vec / scale).astype(np.int8), scale

    def _qdistances_to(
        self, qcodes: np.ndarray, qscale: float, qnorm: float, qsq: float, ids
    ) -> np.ndarray:
        """Approximate distances on the int8 codes (traversal only).

        ``qcodes`` is the query's code row pre-cast to float64 so each call
        is one int8 gather, one cast, one GEMV.  Cosine uses the *true*
        cached norms in the denominator; l2 expands ``|a-q|^2`` around the
        quantised dot product with the true squared norms.
        """
        idx = np.asarray(ids, dtype=np.intp)
        dots = (self._codes[idx].astype(np.float64) @ qcodes) * (
            self._code_scales[idx] * qscale
        )
        if self.metric == "l2":
            return self._norms[idx] ** 2 + qsq - 2.0 * dots
        denom = self._norms[idx] * qnorm
        if self._min_norm * qnorm >= 1e-12:
            return 1.0 - dots / denom
        near_zero = denom < 1e-12
        return np.where(near_zero, 1.0, 1.0 - dots / np.where(near_zero, 1.0, denom))

    def _query_kernel(self, query: np.ndarray, qnorm: float):
        """Distance kernel bound to one query: ``kernel(ids) -> distances``.

        Float mode binds the exact gather+GEMV kernel; int8 mode quantises
        the query once and binds the code kernel.  Every traversal routine
        (greedy descent, beam search on any layer) goes through the kernel,
        so the two modes share identical control flow.
        """
        if not self._quantized:
            return lambda ids: self._distances_to(query, ids, qnorm)
        codes, qscale = self._quantize(query)
        qcodes = codes.astype(np.float64)
        qsq = float(query @ query) if self.metric == "l2" else 0.0
        return lambda ids: self._qdistances_to(qcodes, qscale, qnorm, qsq, ids)

    def _draw_level(self) -> int:
        u = float(self._rng.random())
        u = max(u, 1e-12)
        return int(-math.log(u) * self._level_mult)

    # ------------------------------------------------------------------ #
    # core graph routines
    # ------------------------------------------------------------------ #

    def _greedy_descend(
        self, kernel, curr: int, d_curr: float, layer: int
    ) -> tuple[int, float]:
        """Move to the closest neighbour until no neighbour improves."""
        while True:
            nbrs = self._neighbors[curr][layer]
            if not nbrs:
                return curr, d_curr
            dists = kernel(nbrs)
            best = int(np.argmin(dists))
            if dists[best] < d_curr:
                curr = nbrs[best]
                d_curr = float(dists[best])
            else:
                return curr, d_curr

    def _search_layer(
        self, kernel, entry_ids: list[int], ef: int, layer: int
    ) -> list[tuple[float, int]]:
        """Beam search on one layer; returns (distance, node_id), unsorted."""
        visited = set(entry_ids)
        entry_dists = kernel(entry_ids)
        # candidates: min-heap by distance; results: max-heap via negation
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []
        for i, nid in enumerate(entry_ids):
            d = float(entry_dists[i])
            heapq.heappush(candidates, (d, nid))
            heapq.heappush(results, (-d, nid))
        while candidates:
            d_cand, nid = heapq.heappop(candidates)
            d_worst = -results[0][0]
            if d_cand > d_worst and len(results) >= ef:
                break
            fresh = [nb for nb in self._neighbors[nid][layer] if nb not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            dists = kernel(fresh)
            for i, nb in enumerate(fresh):
                d = float(dists[i])
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, nb))
                    heapq.heappush(results, (-d, nb))
                    if len(results) > ef:
                        heapq.heappop(results)
        return [(-nd, nid) for nd, nid in results]

    def _ensure_packed(self) -> None:
        """Pack the layer-0 adjacency lists into flat arrays.

        Rebuilt lazily whenever the graph changed since the last search;
        construction keeps mutating the list-of-lists, so packing there
        would mean an O(n*m) rebuild per insert.
        """
        if self._packed_version == self._graph_version:
            return
        n = self._count
        width = max((len(self._neighbors[nid][0]) for nid in range(n)), default=0)
        rows = np.zeros((n, width), dtype=np.intp)
        counts = np.zeros(n, dtype=np.intp)
        for nid in range(n):
            nbrs = self._neighbors[nid][0]
            counts[nid] = len(nbrs)
            rows[nid, : len(nbrs)] = nbrs
        self._packed0 = rows
        self._packed0_counts = counts
        self._packed_version = self._graph_version
        if self._visited_mark.shape[0] < n:
            self._visited_mark = np.zeros(max(n, _INITIAL_CAPACITY), dtype=np.int64)
            self._visit_stamp = 0

    def _search_layer0(
        self, kernel, entry_ids: list[int], ef: int
    ) -> list[tuple[float, int]]:
        """Layer-0 beam search over the packed adjacency (read-only paths).

        Mirrors :meth:`_search_layer` exactly — same visit order through
        the same distance kernel, so the same results bit for bit — but
        gathers neighbours from the packed arrays and tracks visited nodes
        with a reusable stamp array instead of a set (``mark[nid] == stamp``
        means visited; bumping the stamp clears all marks for free), which
        is what makes the batched search paths fast.
        """
        rows = self._packed0
        counts = self._packed0_counts
        self._visit_stamp += 1
        stamp = self._visit_stamp
        mark = self._visited_mark
        entry_idx = np.asarray(entry_ids, dtype=np.intp)
        mark[entry_idx] = stamp
        entry_dists = kernel(entry_idx)
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []
        for d, nid in zip(entry_dists.tolist(), entry_ids):
            heapq.heappush(candidates, (d, nid))
            heapq.heappush(results, (-d, nid))
        push, pop = heapq.heappush, heapq.heappop
        while candidates:
            d_cand, nid = pop(candidates)
            if d_cand > -results[0][0] and len(results) >= ef:
                break
            nbrs = rows[nid, : counts[nid]]
            fresh = nbrs[mark[nbrs] != stamp]
            if fresh.size == 0:
                continue
            mark[fresh] = stamp
            dists = kernel(fresh)
            for d, nb in zip(dists.tolist(), fresh.tolist()):
                if len(results) < ef or d < -results[0][0]:
                    push(candidates, (d, nb))
                    push(results, (-d, nb))
                    if len(results) > ef:
                        pop(results)
        return [(-nd, nid) for nd, nid in results]

    def _select_neighbors(
        self, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Diversity heuristic: keep a candidate only if it is closer to the
        query than to every already-selected neighbour."""
        selected: list[tuple[float, int]] = []
        selected_ids: list[int] = []
        for d, nid in sorted(candidates):
            if len(selected) >= m:
                break
            if selected_ids:
                to_selected = self._distances_to(
                    self._vectors[nid], selected_ids, self._norms[nid]
                )
                if bool((to_selected < d).any()):
                    continue
            selected.append((d, nid))
            selected_ids.append(nid)
        if len(selected) < m:  # backfill with nearest remaining candidates
            chosen = set(selected_ids)
            for d, nid in sorted(candidates):
                if len(selected) >= m:
                    break
                if nid not in chosen:
                    selected.append((d, nid))
                    chosen.add(nid)
        return [nid for _, nid in selected]

    def _link(self, source: int, target: int, layer: int, cap: int) -> None:
        """Add a directed edge, shrinking with the heuristic if over capacity."""
        nbrs = self._neighbors[source][layer]
        if target == source or target in nbrs:
            return
        nbrs.append(target)
        if len(nbrs) > cap:
            dists = self._distances_to(
                self._vectors[source], nbrs, self._norms[source]
            )
            cands = list(zip(dists.tolist(), nbrs))
            self._neighbors[source][layer] = self._select_neighbors(cands, cap)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def add(self, vector: np.ndarray, key: int) -> None:
        """Insert a vector under an application-level integer key."""
        vec = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {vec.shape[0]}")
        key = int(key)
        if key in self._keys_seen:
            raise IndexError_(f"duplicate key {key}")
        self._keys_seen.add(key)

        level = self._draw_level()
        node_id = self._count
        self._reserve(node_id + 1)
        self._vectors[node_id] = vec
        self._norms[node_id] = float(np.linalg.norm(self._vectors[node_id]))
        self._min_norm = min(self._min_norm, float(self._norms[node_id]))
        if self._quantized:
            codes, scale = self._quantize(vec)
            self._codes[node_id] = codes
            self._code_scales[node_id] = scale
        self._graph_version += 1
        self._count += 1
        self._keys.append(key)
        self._key_arr[node_id] = key
        self._neighbors.append([[] for _ in range(level + 1)])
        stored = self._vectors[node_id]
        qnorm = self._norms[node_id] if self.metric == "cosine" else 0.0

        if self._entry is None:
            self._entry = node_id
            return

        entry = self._entry
        top = len(self._neighbors[entry]) - 1
        kernel = self._query_kernel(stored, qnorm)

        # 1. greedy descent through layers above the new node's level
        curr = entry
        d_curr = float(kernel([curr])[0])
        for layer in range(top, level, -1):
            curr, d_curr = self._greedy_descend(kernel, curr, d_curr, layer)

        # 2. insert on each layer from min(level, top) down to 0
        entries = [curr]
        for layer in range(min(level, top), -1, -1):
            found = self._search_layer(kernel, entries, self.ef_construction, layer)
            cap = self.m0 if layer == 0 else self.m
            neighbors = self._select_neighbors(found, self.m)
            self._neighbors[node_id][layer] = list(neighbors)
            for nb in neighbors:
                self._link(nb, node_id, layer, cap)
            entries = [nid for _, nid in sorted(found)[: self.ef_construction]]

        if level > top:
            self._entry = node_id

    def add_batch(
        self, vectors: np.ndarray, keys: Iterable[int] | None = None
    ) -> None:
        """Insert many vectors at once (keys default to ``0..n-1``).

        Validates shapes *and keys* once, up front, before any insertion —
        a rejected batch leaves the index untouched instead of stranding a
        prefix of it inserted.  Insertion order (and therefore the graph)
        is identical to calling :meth:`add` per row.
        """
        matrix = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if matrix.shape[0] == 0:
            return
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        key_list = list(range(matrix.shape[0])) if keys is None else [int(k) for k in keys]
        if len(key_list) != matrix.shape[0]:
            raise IndexError_(
                f"got {matrix.shape[0]} vectors but {len(key_list)} keys"
            )
        batch_seen: set[int] = set()
        for key in key_list:
            if key in self._keys_seen or key in batch_seen:
                raise IndexError_(f"duplicate key {key}")
            batch_seen.add(key)
        self._reserve(self._count + matrix.shape[0])
        for row, key in zip(matrix, key_list):
            self.add(row, key)

    def _search_one_raw(
        self, query: np.ndarray, qnorm: float, k: int, ef: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array-native search core: ``(node_ids, distances)``, nearest first.

        Shared by every public path (scalar, batched, tuple, array), which
        is what keeps them bit-identical.  Ties on distance break by node
        id, i.e. insertion order.  In int8 mode the beam runs on the code
        kernel and the surviving candidate set is re-ranked here with the
        exact float kernel before the top-k cut, so returned distances are
        always exact.
        """
        assert self._entry is not None
        self._ensure_packed()
        width = max(ef if ef is not None else self.ef_search, k)
        kernel = self._query_kernel(query, qnorm)
        curr = self._entry
        top = len(self._neighbors[curr]) - 1
        if top > 0:
            d_curr = float(kernel([curr])[0])
            for layer in range(top, 0, -1):
                curr, d_curr = self._greedy_descend(kernel, curr, d_curr, layer)
        found = self._search_layer0(kernel, [curr], width)
        ids = np.fromiter((nid for _, nid in found), dtype=np.intp, count=len(found))
        if self._quantized:
            dists = self._distances_to(query, ids, qnorm)
        else:
            dists = np.fromiter(
                (d for d, _ in found), dtype=np.float64, count=len(found)
            )
        order = np.lexsort((ids, dists))[:k]
        return ids[order], dists[order]

    def _scan_raw(
        self, query: np.ndarray, qnorm: float, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k by full scan: ``(node_ids, distances)``, nearest first.

        Same result contract as :meth:`_search_one_raw` (ties break by node
        id) but exhaustive, always on the exact float kernel, and without
        touching the graph.  The sharded layer uses this for shards small
        enough that one vectorised scan beats a beam traversal.
        """
        n = self._count
        if n == 0:
            empty = np.zeros(0, dtype=np.intp)
            return empty, np.zeros(0, dtype=np.float64)
        ids = np.arange(n, dtype=np.intp)
        dists = self._distances_to(query, ids, qnorm)
        order = np.lexsort((ids, dists))[:k]
        return ids[order], dists[order]

    def _ensure_router(self) -> None:
        """(Re)build the coarse routing structure for :meth:`_routed_scan_raw`.

        ~sqrt(n) stored rows, sampled at a deterministic stride, act as
        centroids; every row is bucketed under its nearest centroid (one
        chunked float32 matmul, offline).  Alongside the bucket layout the
        router keeps a bucket-ordered *contiguous float32 copy* of the rows
        (normalised for cosine, plus squared norms for l2) so a routed query
        can rank every candidate with a single dense GEMV instead of a
        float64 gather — that is the difference between the routed scan
        beating and losing to the beam at 100k vectors on one core.  The
        structure is a pure function of the stored vectors, so identical
        indexes route identically; it is invalidated by any insert
        (version = element count) and rebuilt on the next routed search.
        """
        n = self._count
        if self._router_version == n:
            return
        c = max(1, int(round(math.sqrt(n))))
        cids = np.unique(np.linspace(0, n - 1, c).round().astype(np.intp))
        vecs = self._vectors[:n].astype(np.float32)
        assign = np.empty(n, dtype=np.intp)
        if self.metric == "cosine":
            norms = np.maximum(self._norms[:n], 1e-12).astype(np.float32)
            vecs /= norms[:, None]
            centroids_t = vecs[cids].T
            for lo in range(0, n, _ROUTER_ASSIGN_CHUNK):
                hi = min(n, lo + _ROUTER_ASSIGN_CHUNK)
                assign[lo:hi] = np.argmax(vecs[lo:hi] @ centroids_t, axis=1)
        else:
            sq = np.einsum("ij,ij->i", vecs, vecs)
            centroids_t = vecs[cids].T
            centroid_sq = sq[cids]
            for lo in range(0, n, _ROUTER_ASSIGN_CHUNK):
                hi = min(n, lo + _ROUTER_ASSIGN_CHUNK)
                block = centroid_sq[None, :] - 2.0 * (vecs[lo:hi] @ centroids_t)
                assign[lo:hi] = np.argmin(block, axis=1)
        order = np.argsort(assign, kind="stable").astype(np.intp)
        counts = np.bincount(assign, minlength=cids.shape[0])
        self._router_centroid_ids = cids
        self._router_bucket_ids = order
        self._router_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
        self._router_rows = np.ascontiguousarray(vecs[order])
        self._router_centroid_rows = np.ascontiguousarray(vecs[cids])
        if self.metric == "l2":
            self._router_bias = sq[order].astype(np.float32)
            self._router_centroid_bias = centroid_sq.astype(np.float32)
        else:
            self._router_bias = np.zeros(0, dtype=np.float32)
            self._router_centroid_bias = np.zeros(0, dtype=np.float32)
        self._router_version = n

    def _routed_scan_raw(
        self, query: np.ndarray, qnorm: float, k: int, n_probes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single-query view over :meth:`_routed_scan_batch` (same path)."""
        ids, dists = self._routed_scan_batch(query[np.newaxis, :], k, n_probes)
        valid = ids[0] >= 0
        return ids[0][valid], dists[0][valid]

    def _routed_scan_batch(
        self, matrix: np.ndarray, k: int, n_probes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k via the coarse router: probe, score, re-rank.

        Returns ``(node_ids, distances)`` blocks of shape ``(n_queries,
        k)``, padded with ``-1`` / ``+inf``.  Three stages:

        1. Every query ranks the ~sqrt(n) centroids with one *per-query*
           float32 GEMV over the contiguous centroid matrix and keeps the
           ``n_probes`` nearest — bucket choice is therefore bit-identical
           between the scalar and batched public paths by construction (a
           GEMM over the whole batch would not be: this BLAS is not
           row-consistent across batch shapes).
        2. Queries are grouped *by probed bucket* and each bucket's rows
           are scored against all its queries with one dense float32 GEMM
           over the router's contiguous row copy.  This is what makes the
           routed scan win on one core: each candidate row is read once
           per *batch* instead of once per *query*.
        3. Per query, the leading ``k + 32`` pool by float32 score is
           re-ranked with the exact float64 kernel under the shared
           ``(distance, node id)`` contract — returned distances are
           always exact, and only *coverage* is approximate.  The float32
           scores never decide the final order, so the last-ulp GEMM wobble
           between batch shapes cannot change the answer unless ~32
           candidates crowd within ~1e-6 of the pool boundary; an exact
           float32 tie straddling the boundary falls back to re-ranking
           every candidate, so mass duplicates keep the deterministic
           contract.

        ``n_probes >= n_centroids`` (and a query whose probed buckets are
        all empty) degenerates to the exhaustive scan.
        """
        nq = matrix.shape[0]
        out_ids = np.full((nq, k), -1, dtype=np.intp)
        out_dists = np.full((nq, k), np.inf, dtype=np.float64)
        n = self._count
        if n == 0 or nq == 0:
            return out_ids, out_dists
        qnorms = [self._query_norm(row) for row in matrix]

        def fill_row(i: int, ids: np.ndarray, dists: np.ndarray) -> None:
            out_ids[i, : ids.shape[0]] = ids
            out_dists[i, : dists.shape[0]] = dists

        self._ensure_router()
        cids = self._router_centroid_ids
        c = cids.shape[0]
        p = min(max(1, n_probes), c)
        if p >= c:
            for i in range(nq):
                fill_row(i, *self._scan_raw(matrix[i], qnorms[i], k))
            return out_ids, out_dists

        offsets = self._router_offsets
        bucket_len = offsets[1:] - offsets[:-1]
        q32 = matrix.astype(np.float32)
        cmat_t = self._router_centroid_rows.T
        probes = np.empty((nq, p), dtype=np.intp)
        for i in range(nq):
            if self.metric == "l2":
                centroid_scores = self._router_centroid_bias - np.float32(
                    2.0
                ) * (q32[i] @ cmat_t)
            else:
                centroid_scores = -(q32[i] @ cmat_t)
            probes[i] = np.sort(np.argpartition(centroid_scores, p - 1)[:p])

        # Flat per-query candidate segments, pieces laid out in sorted
        # bucket order; (query, bucket) pairs grouped by bucket for GEMM.
        pair_q = np.repeat(np.arange(nq, dtype=np.intp), p)
        pair_b = probes.reshape(-1)
        pair_len = bucket_len[pair_b].reshape(nq, p)
        seg_len = pair_len.sum(axis=1)
        seg_start = np.concatenate(([0], np.cumsum(seg_len)))
        within = np.zeros_like(pair_len)
        within[:, 1:] = np.cumsum(pair_len[:, :-1], axis=1)
        pair_pos = (seg_start[:-1, np.newaxis] + within).reshape(-1)
        total = int(seg_start[-1])
        flat_scores = np.empty(total, dtype=np.float32)

        rows = self._router_rows
        by_bucket = np.argsort(pair_b, kind="stable")
        b_sorted = pair_b[by_bucket]
        group_edges = np.concatenate(
            ([0], np.nonzero(np.diff(b_sorted))[0] + 1, [b_sorted.size])
        )
        for g in range(group_edges.size - 1):
            glo, ghi = group_edges[g], group_edges[g + 1]
            b = int(b_sorted[glo])
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            if hi == lo:
                continue
            pairs = by_bucket[glo:ghi]
            block = q32[pair_q[pairs]] @ rows[lo:hi].T
            if self.metric == "l2":
                # |r - q|^2 minus the constant |q|^2: same ranking.
                scores = self._router_bias[lo:hi][np.newaxis, :] - np.float32(
                    2.0
                ) * block
            else:
                # Rows are unit-normalised; -dot ranks identically to
                # cosine distance for any query scale.
                scores = -block
            dest = pair_pos[pairs][:, np.newaxis] + np.arange(hi - lo)
            flat_scores[dest] = scores

        def segment_ids(i: int, positions: np.ndarray) -> np.ndarray:
            # Map within-segment positions back to node ids through the
            # per-query piece layout (cheaper than scattering an id copy
            # alongside every score).
            piece = np.searchsorted(within[i], positions, side="right") - 1
            starts = offsets[probes[i][piece]]
            return self._router_bucket_ids[starts + (positions - within[i][piece])]

        width = k + 32
        for i in range(nq):
            s0, s1 = int(seg_start[i]), int(seg_start[i + 1])
            if s0 == s1:
                fill_row(i, *self._scan_raw(matrix[i], qnorms[i], k))
                continue
            scores = flat_scores[s0:s1]
            pool = None
            if scores.shape[0] > width:
                part = np.argpartition(scores, width - 1)[:width]
                threshold = scores[part].max()
                if int(np.count_nonzero(scores <= threshold)) <= width:
                    pool = segment_ids(i, part)
            if pool is None:
                pool = segment_ids(i, np.arange(s1 - s0))
            dists = self._distances_to(matrix[i], pool, qnorms[i])
            order = np.lexsort((pool, dists))[:k]
            fill_row(i, pool[order], dists[order])
        return out_ids, out_dists

    def _search_one(
        self, query: np.ndarray, qnorm: float, k: int, ef: int | None
    ) -> list[tuple[int, float]]:
        """Tuple view over :meth:`_search_one_raw`."""
        ids, dists = self._search_one_raw(query, qnorm, k, ef)
        return list(zip(self._key_arr[ids].tolist(), dists.tolist()))

    def search(
        self, query: np.ndarray, k: int, ef: int | None = None
    ) -> list[tuple[int, float]]:
        """Return up to ``k`` ``(key, distance)`` pairs, nearest first."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if self._entry is None:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {query.shape[0]}")
        return self._search_one(query, self._query_norm(query), k, ef)

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None
    ) -> list[list[tuple[int, float]]]:
        """k-NN lists for a ``(n, dim)`` query matrix, one per row.

        Bit-identical to ``[self.search(q, k, ef) for q in queries]`` —
        every row runs through the same vectorized kernel — while
        validating and converting the whole batch once.  An empty batch
        returns an empty list.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.size == 0 and matrix.ndim <= 2:
            return []
        matrix = np.atleast_2d(matrix)
        if matrix.ndim != 2:
            raise IndexError_(f"queries must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        if self._entry is None:
            return [[] for _ in range(matrix.shape[0])]
        return [
            self._search_one(row, self._query_norm(row), k, ef) for row in matrix
        ]

    def search_batch_arrays(
        self, queries: np.ndarray, k: int, ef: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array-native batch search: ``(keys, dists)`` of shape ``(n, k)``.

        Row ``i`` holds the same hits, in the same order, as
        ``search_batch(queries, k, ef)[i]``; when fewer than ``k`` elements
        exist the row tail is padded with key ``-1`` and distance ``+inf``
        (a pad entry always has both).  No Python tuples are materialised,
        which is what the sharded hot loop rides.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.size == 0 and matrix.ndim <= 2:
            return (
                np.full((0, k), -1, dtype=np.int64),
                np.full((0, k), np.inf, dtype=np.float64),
            )
        matrix = np.atleast_2d(matrix)
        if matrix.ndim != 2:
            raise IndexError_(f"queries must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        n_queries = matrix.shape[0]
        keys = np.full((n_queries, k), -1, dtype=np.int64)
        dists = np.full((n_queries, k), np.inf, dtype=np.float64)
        if self._entry is None:
            return keys, dists
        for i, row in enumerate(matrix):
            ids, row_dists = self._search_one_raw(row, self._query_norm(row), k, ef)
            keys[i, : ids.shape[0]] = self._key_arr[ids]
            dists[i, : row_dists.shape[0]] = row_dists
        return keys, dists

    def knn_graph(self, k: int, ef: int | None = None) -> dict[int, list[tuple[int, float]]]:
        """k-NN lists for every indexed element (self-match excluded).

        Queries the stored rows directly (no copies, cached norms), so the
        whole bulk pass rides the vectorized search path.
        """
        out: dict[int, list[tuple[int, float]]] = {}
        for nid in range(self._count):
            query = self._vectors[nid]
            qnorm = self._norms[nid] if self.metric == "cosine" else 0.0
            hits = self._search_one(query, qnorm, k + 1, ef)
            key = self._keys[nid]
            out[key] = [(other, d) for other, d in hits if other != key][:k]
        return out
