"""Hierarchical Navigable Small World graphs, implemented from scratch.

This is the index the paper uses to cluster prompt embeddings before
deduplication (§3.1).  The implementation follows Malkov & Yashunin (2016):

* each element is inserted at a geometrically distributed maximum layer;
* greedy search descends from the top layer to layer 0;
* ``SEARCH-LAYER`` maintains a dynamic candidate list of size ``ef``;
* neighbours are chosen with the diversity heuristic (``SELECT-NEIGHBORS-
  HEURISTIC``), which keeps the graph navigable in clustered data — the
  regime our prompt corpus is explicitly constructed to be in.

Only the features the pipeline needs are implemented (add + k-NN search);
there is no deletion.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import IndexError_

__all__ = ["HnswIndex"]


class _Node:
    """One indexed element: its vector and per-layer adjacency lists."""

    __slots__ = ("key", "vector", "neighbors")

    def __init__(self, key: int, vector: np.ndarray, max_layer: int):
        self.key = key
        self.vector = vector
        # neighbors[layer] -> list of node ids (positions in the node table)
        self.neighbors: list[list[int]] = [[] for _ in range(max_layer + 1)]

    @property
    def max_layer(self) -> int:
        return len(self.neighbors) - 1


class HnswIndex:
    """HNSW approximate nearest-neighbour index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    m:
        Target out-degree on layers > 0 (layer 0 allows ``2 * m``).
    ef_construction:
        Candidate-list width during insertion.
    ef_search:
        Default candidate-list width during queries (>= k is enforced).
    metric:
        ``"cosine"`` (distance = 1 - cosine similarity) or ``"l2"``
        (squared Euclidean).
    seed:
        Seed for the level-assignment RNG; fixes the graph shape.
    """

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 200,
        ef_search: int = 50,
        metric: str = "cosine",
        seed: int = 0,
    ):
        if dim <= 0:
            raise IndexError_(f"dim must be positive, got {dim}")
        if m < 2:
            raise IndexError_(f"m must be >= 2, got {m}")
        if ef_construction < 1 or ef_search < 1:
            raise IndexError_("ef parameters must be >= 1")
        if metric not in ("cosine", "l2"):
            raise IndexError_(f"unknown metric {metric!r}")
        self.dim = dim
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.metric = metric
        self._level_mult = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        self._nodes: list[_Node] = []
        self._entry: int | None = None  # node id of the entry point
        self._keys_seen: set[int] = set()

    # ------------------------------------------------------------------ #
    # basic plumbing
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._nodes)

    def _distance(self, a: np.ndarray, b: np.ndarray) -> float:
        if self.metric == "l2":
            diff = a - b
            return float(diff @ diff)
        na = float(np.linalg.norm(a))
        nb = float(np.linalg.norm(b))
        if na < 1e-12 or nb < 1e-12:
            return 1.0
        return 1.0 - float(a @ b) / (na * nb)

    def _draw_level(self) -> int:
        u = float(self._rng.random())
        u = max(u, 1e-12)
        return int(-math.log(u) * self._level_mult)

    # ------------------------------------------------------------------ #
    # core graph routines
    # ------------------------------------------------------------------ #

    def _search_layer(
        self, query: np.ndarray, entry_ids: list[int], ef: int, layer: int
    ) -> list[tuple[float, int]]:
        """Beam search on one layer; returns (distance, node_id), unsorted."""
        visited = set(entry_ids)
        # candidates: min-heap by distance; results: max-heap via negation
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []
        for nid in entry_ids:
            d = self._distance(query, self._nodes[nid].vector)
            heapq.heappush(candidates, (d, nid))
            heapq.heappush(results, (-d, nid))
        while candidates:
            d_cand, nid = heapq.heappop(candidates)
            d_worst = -results[0][0]
            if d_cand > d_worst and len(results) >= ef:
                break
            for nb in self._nodes[nid].neighbors[layer]:
                if nb in visited:
                    continue
                visited.add(nb)
                d = self._distance(query, self._nodes[nb].vector)
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, nb))
                    heapq.heappush(results, (-d, nb))
                    if len(results) > ef:
                        heapq.heappop(results)
        return [(-nd, nid) for nd, nid in results]

    def _select_neighbors(
        self, candidates: list[tuple[float, int]], m: int
    ) -> list[int]:
        """Diversity heuristic: keep a candidate only if it is closer to the
        query than to every already-selected neighbour."""
        selected: list[tuple[float, int]] = []
        for d, nid in sorted(candidates):
            if len(selected) >= m:
                break
            vec = self._nodes[nid].vector
            dominated = any(
                self._distance(vec, self._nodes[sid].vector) < d
                for _, sid in selected
            )
            if not dominated:
                selected.append((d, nid))
        if len(selected) < m:  # backfill with nearest remaining candidates
            chosen = {nid for _, nid in selected}
            for d, nid in sorted(candidates):
                if len(selected) >= m:
                    break
                if nid not in chosen:
                    selected.append((d, nid))
                    chosen.add(nid)
        return [nid for _, nid in selected]

    def _link(self, source: int, target: int, layer: int, cap: int) -> None:
        """Add a directed edge, shrinking with the heuristic if over capacity."""
        nbrs = self._nodes[source].neighbors[layer]
        if target == source or target in nbrs:
            return
        nbrs.append(target)
        if len(nbrs) > cap:
            src_vec = self._nodes[source].vector
            cands = [(self._distance(src_vec, self._nodes[n].vector), n) for n in nbrs]
            self._nodes[source].neighbors[layer] = self._select_neighbors(cands, cap)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def add(self, vector: np.ndarray, key: int) -> None:
        """Insert a vector under an application-level integer key."""
        vec = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {vec.shape[0]}")
        key = int(key)
        if key in self._keys_seen:
            raise IndexError_(f"duplicate key {key}")
        self._keys_seen.add(key)

        level = self._draw_level()
        node = _Node(key, vec, level)
        node_id = len(self._nodes)
        self._nodes.append(node)

        if self._entry is None:
            self._entry = node_id
            return

        entry = self._entry
        top = self._nodes[entry].max_layer

        # 1. greedy descent through layers above the new node's level
        curr = entry
        for layer in range(top, level, -1):
            improved = True
            while improved:
                improved = False
                d_curr = self._distance(vec, self._nodes[curr].vector)
                for nb in self._nodes[curr].neighbors[layer]:
                    if self._distance(vec, self._nodes[nb].vector) < d_curr:
                        curr = nb
                        d_curr = self._distance(vec, self._nodes[curr].vector)
                        improved = True

        # 2. insert on each layer from min(level, top) down to 0
        entries = [curr]
        for layer in range(min(level, top), -1, -1):
            found = self._search_layer(vec, entries, self.ef_construction, layer)
            cap = self.m0 if layer == 0 else self.m
            neighbors = self._select_neighbors(found, self.m)
            node.neighbors[layer] = list(neighbors)
            for nb in neighbors:
                self._link(nb, node_id, layer, cap)
            entries = [nid for _, nid in sorted(found)[: self.ef_construction]]

        if level > top:
            self._entry = node_id

    def search(
        self, query: np.ndarray, k: int, ef: int | None = None
    ) -> list[tuple[int, float]]:
        """Return up to ``k`` ``(key, distance)`` pairs, nearest first."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if self._entry is None:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {query.shape[0]}")
        ef = max(ef if ef is not None else self.ef_search, k)

        curr = self._entry
        for layer in range(self._nodes[curr].max_layer, 0, -1):
            improved = True
            while improved:
                improved = False
                d_curr = self._distance(query, self._nodes[curr].vector)
                for nb in self._nodes[curr].neighbors[layer]:
                    if self._distance(query, self._nodes[nb].vector) < d_curr:
                        curr = nb
                        d_curr = self._distance(query, self._nodes[curr].vector)
                        improved = True

        found = self._search_layer(query, [curr], ef, 0)
        found.sort()
        return [(self._nodes[nid].key, d) for d, nid in found[:k]]

    def knn_graph(self, k: int, ef: int | None = None) -> dict[int, list[tuple[int, float]]]:
        """k-NN lists for every indexed element (self-match excluded)."""
        out: dict[int, list[tuple[int, float]]] = {}
        for node in self._nodes:
            hits = self.search(node.vector, k + 1, ef=ef)
            out[node.key] = [(key, d) for key, d in hits if key != node.key][:k]
        return out
