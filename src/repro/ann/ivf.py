"""IVF-flat approximate nearest-neighbour index.

An inverted-file index: a k-means coarse quantizer partitions the corpus
into lists; a query scans only the ``n_probe`` nearest lists.  Included as
the classical alternative to HNSW so the ANN layer can be ablated
(recall/latency trade-offs differ: IVF degrades gracefully with ``n_probe``,
HNSW with ``ef``).

API mirrors :class:`repro.ann.hnsw.HnswIndex` (add / search with
``(key, distance)`` results) except that IVF requires an explicit
:meth:`train` step — also true of the real FAISS counterpart.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import kmeans
from repro.errors import IndexError_, NotFittedError

__all__ = ["IvfFlatIndex"]


class IvfFlatIndex:
    """Inverted-file flat index over L2 or cosine distance."""

    def __init__(
        self,
        dim: int,
        n_lists: int = 16,
        n_probe: int = 4,
        metric: str = "cosine",
        seed: int = 0,
    ):
        if dim <= 0:
            raise IndexError_(f"dim must be positive, got {dim}")
        if n_lists < 1:
            raise IndexError_(f"n_lists must be >= 1, got {n_lists}")
        if n_probe < 1:
            raise IndexError_(f"n_probe must be >= 1, got {n_probe}")
        if metric not in ("cosine", "l2"):
            raise IndexError_(f"unknown metric {metric!r}")
        self.dim = dim
        self.n_lists = n_lists
        self.n_probe = n_probe
        self.metric = metric
        self.seed = int(seed)
        self._centroids: np.ndarray | None = None
        self._lists: list[list[int]] = []
        self._vectors: list[np.ndarray] = []
        self._keys: list[int] = []

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def _prep(self, vector: np.ndarray) -> np.ndarray:
        vec = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {vec.shape[0]}")
        if self.metric == "cosine":
            norm = float(np.linalg.norm(vec))
            if norm > 1e-12:
                vec = vec / norm
        return vec

    def train(self, sample: np.ndarray) -> "IvfFlatIndex":
        """Fit the coarse quantizer on a (representative) sample."""
        matrix = np.atleast_2d(np.asarray(sample, dtype=np.float64))
        if matrix.shape[0] == 0:
            raise IndexError_("cannot train on an empty sample")
        prepared = np.vstack([self._prep(row) for row in matrix])
        k = min(self.n_lists, prepared.shape[0])
        result = kmeans(prepared, k, seed=self.seed)
        self._centroids = result.centroids
        self._lists = [[] for _ in range(result.k)]
        return self

    def _nearest_lists(self, vec: np.ndarray, n: int) -> np.ndarray:
        assert self._centroids is not None
        dists = np.sum((self._centroids - vec) ** 2, axis=1)
        n = min(n, dists.shape[0])
        return np.argsort(dists, kind="stable")[:n]

    def add(self, vector: np.ndarray, key: int) -> None:
        if not self.is_trained:
            raise NotFittedError("IvfFlatIndex.add() before train()")
        vec = self._prep(vector)
        slot = len(self._keys)
        self._vectors.append(vec)
        self._keys.append(int(key))
        list_id = int(self._nearest_lists(vec, 1)[0])
        self._lists[list_id].append(slot)

    def search(
        self, query: np.ndarray, k: int, n_probe: int | None = None
    ) -> list[tuple[int, float]]:
        """Scan the ``n_probe`` closest lists; return (key, distance)."""
        if not self.is_trained:
            raise NotFittedError("IvfFlatIndex.search() before train()")
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if not self._keys:
            return []
        vec = self._prep(query)
        probes = self._nearest_lists(vec, n_probe or self.n_probe)
        candidates = [slot for lid in probes for slot in self._lists[lid]]
        if not candidates:
            return []
        matrix = np.vstack([self._vectors[slot] for slot in candidates])
        if self.metric == "l2":
            dists = np.sum((matrix - vec) ** 2, axis=1)
        else:
            dists = 1.0 - matrix @ vec
        order = np.argsort(dists, kind="stable")[: min(k, len(candidates))]
        return [(self._keys[candidates[i]], float(dists[i])) for i in order]
