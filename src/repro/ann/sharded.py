"""A sharded HNSW index: K independent graphs, one deterministic merge.

The monolithic :class:`~repro.ann.hnsw.HnswIndex` builds one graph over the
whole corpus; at serving scale both construction and the per-query beam
search grow with corpus size.  ``ShardedHnswIndex`` partitions the vectors
round-robin across K independent ``HnswIndex`` shards, so

* **build** inserts into K graphs of ``n / K`` nodes each — cheaper even
  serially, because insertion cost grows with graph size — and runs the
  per-shard builds in a thread pool (numpy releases the GIL inside the
  gather+gemv distance kernel);
* **search** fans each query out to every shard and merges the per-shard
  top-k answers in one vectorised pass.

Sharded search only pays off if each shard does *less* work than the
single index would, so the fan-out picks a per-shard strategy by size:

* a shard at or below ``scan_threshold`` elements answers with one exact
  vectorised scan (:meth:`~repro.ann.hnsw.HnswIndex._scan_raw`) — at small
  n a single gather+GEMV over the whole shard is an order of magnitude
  cheaper than walking the graph, and it is exhaustive, so small-corpus
  recall can only improve;
* a larger shard answers with a *routed* scan
  (:meth:`~repro.ann.hnsw.HnswIndex._routed_scan_batch`): ~sqrt(n)
  sampled rows act as coarse centroids, each query probes the nearest
  few buckets, and queries are grouped *by bucket* so one float32 GEMM
  scores every bucket's rows against all the queries probing it — each
  candidate row is read once per batch, not once per query — before the
  best pool per query is re-ranked with the exact float kernel.  On a
  GIL-bound host this beats walking K graphs per query twice over: a
  beam search pays a fixed per-query descent cost (~130 us measured)
  *per shard*, so K descents alone exceed one whole monolithic search,
  and per-query distance kernels are memory-bound where the grouped
  GEMM is not;
* ``large_shard_search="beam"`` instead runs each big shard's beam with a
  *split* ef budget, ``max(k, ceil(ef / n_shards) + pad)`` — each shard
  holds ~1/K of the corpus, so it needs ~1/K of the candidate list to
  cover its share of the true top-k, and the additive pad absorbs the
  unlucky shard.  This is the right mode when shard searches truly run
  in parallel (one core per shard) or when the graph must be the source
  of truth; it is not the single-core default because of the fixed-cost
  math above.

``n_shards=1`` bypasses all of that and delegates to the monolithic index
untouched (same ef, beam only), keeping the long-standing bit-parity
contract with a plain ``HnswIndex`` of the same seed.

Parallelism never leaks into results: each shard's graph depends only on
its own slice of the data, per-shard result arrays are collected *by shard
index* (not completion order), and the merge orders candidates by the
declared key ``(distance, shard index, within-shard rank)``.  The output
is therefore bit-identical whatever the thread timing, and
``search_batch`` is bit-identical to ``[search(q, k) for q in queries]``
— the same contract every other batched path in the repo carries
(``tests/test_ann_sharded.py`` pins it).

The thread pool is owned by the index: created lazily on the first
parallel call, reused across calls, released by :meth:`close` (or the
context-manager form), and recreated on demand after a close.  Per-call
executors were measurably more expensive than the work they fanned out.
"""

from __future__ import annotations

from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.ann.hnsw import HnswIndex
from repro.errors import IndexError_
from repro.obs import NULL_OBS, Observability

__all__ = ["ShardedHnswIndex"]

#: Additive slack on the split per-shard ef budget: covers the shard whose
#: slice of the true top-k is larger than the round-robin expectation.
_EF_SPLIT_PAD = 8

#: Buckets for the ``pas_ann_search_ticks`` histogram (ticks are the
#: tracer's deterministic logical clock, one tick per span boundary).
_SEARCH_TICK_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 1000)


class ShardedHnswIndex:
    """Round-robin sharded HNSW with deterministic top-k merging.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_shards:
        Number of independent ``HnswIndex`` shards.  ``n_shards=1`` is
        graph-identical to a plain ``HnswIndex`` with the same seed.
    m / ef_construction / ef_search / metric / quantization:
        Forwarded to every shard (see :class:`~repro.ann.hnsw.HnswIndex`).
    seed:
        Shard ``s`` draws its levels from ``seed + s``, so shard graphs
        are independent but the whole index is reproducible.
    max_workers:
        Thread-pool width for parallel build/search (default: one thread
        per shard).
    scan_threshold:
        Shards at or below this many elements answer queries with an
        exact vectorised scan instead of a routed scan or beam search
        (multi-shard configurations only).  ``0`` disables the scan path.
    large_shard_search:
        Strategy for shards above ``scan_threshold``: ``"routed"``
        (default) probes the nearest coarse-router buckets and re-ranks
        exactly; ``"beam"`` walks each shard's graph with a split ef
        budget.
    route_probes:
        How many router buckets a routed scan visits per shard (default:
        15% of the ~sqrt(n) centroids, floor 8).  More probes trade
        throughput for recall; ``>= n_centroids`` degenerates to the
        exact scan.  The default is tuned for *clustered* corpora (the
        embedding-retrieval regime: 0.98 recall at the 100k bench tier).
        On unstructured data a query's true neighbours spread evenly
        across buckets, so recall degrades toward the coverage fraction
        itself — raise ``route_probes`` or use
        ``large_shard_search="beam"`` there.
    obs:
        Optional :class:`~repro.obs.Observability` bundle: every
        :meth:`search` / :meth:`search_batch` runs inside an
        ``ann.search`` span (from the *calling* thread — worker threads
        never touch the tracer), counts into ``pas_ann_searches_total``,
        and records its span duration into the ``pas_ann_search_ticks``
        histogram (labels: ``mode``, ``quantized``).  Null (free) by
        default.
    """

    def __init__(
        self,
        dim: int,
        n_shards: int = 4,
        m: int = 16,
        ef_construction: int = 200,
        ef_search: int = 50,
        metric: str = "cosine",
        seed: int = 0,
        max_workers: int | None = None,
        scan_threshold: int = 2048,
        large_shard_search: str = "routed",
        route_probes: int | None = None,
        quantization: str = "none",
        obs: Observability = NULL_OBS,
    ):
        if n_shards < 1:
            raise IndexError_(f"n_shards must be >= 1, got {n_shards}")
        if max_workers is not None and max_workers < 1:
            raise IndexError_(f"max_workers must be >= 1, got {max_workers}")
        if scan_threshold < 0:
            raise IndexError_(f"scan_threshold must be >= 0, got {scan_threshold}")
        if large_shard_search not in ("routed", "beam"):
            raise IndexError_(
                "large_shard_search must be 'routed' or 'beam', "
                f"got {large_shard_search!r}"
            )
        if route_probes is not None and route_probes < 1:
            raise IndexError_(f"route_probes must be >= 1, got {route_probes}")
        self.dim = dim
        self.n_shards = n_shards
        self.ef_search = ef_search
        self.max_workers = max_workers
        self.scan_threshold = scan_threshold
        self.large_shard_search = large_shard_search
        self.route_probes = route_probes
        self.quantization = quantization
        self.obs = obs
        self._shards = [
            HnswIndex(
                dim=dim,
                m=m,
                ef_construction=ef_construction,
                ef_search=ef_search,
                metric=metric,
                seed=seed + shard,
                quantization=quantization,
            )
            for shard in range(n_shards)
        ]
        self._count = 0
        self._keys_seen: set[int] = set()
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    @property
    def shard_sizes(self) -> list[int]:
        """Per-shard element counts (round-robin keeps them within 1)."""
        return [len(shard) for shard in self._shards]

    def _pool_width(self) -> int:
        return self.max_workers if self.max_workers is not None else self.n_shards

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """The index-owned executor, created lazily and reused."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_width(), thread_name_prefix="pas-ann"
            )
        return self._pool

    def close(self) -> None:
        """Release the thread pool (idempotent; a later call recreates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedHnswIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def _check_key(self, key: int) -> int:
        key = int(key)
        if key in self._keys_seen:
            raise IndexError_(f"duplicate key {key}")
        self._keys_seen.add(key)
        return key

    # ------------------------------------------------------------------ #
    # fan-out + merge core (arrays end to end)
    # ------------------------------------------------------------------ #

    def _split_ef(self, k: int, ef: int | None) -> int:
        """Per-shard beam budget: ~1/K of the global ef, plus slack."""
        budget = ef if ef is not None else self.ef_search
        return max(k, -(-budget // self.n_shards) + _EF_SPLIT_PAD)

    def _probe_width(self, n_centroids: int) -> int:
        """Routed-scan probe count: explicit setting or 15% of centroids."""
        if self.route_probes is not None:
            return self.route_probes
        return max(8, -(-3 * n_centroids // 20))

    def _shard_arrays(
        self, shard_idx: int, matrix: np.ndarray, k: int, ef: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard's ``(keys, dists)`` answer blocks, padded -1/inf."""
        shard = self._shards[shard_idx]
        n = len(shard)
        if n == 0:
            return shard.search_batch_arrays(matrix, k, ef=ef)
        if n <= self.scan_threshold:
            n_queries = matrix.shape[0]
            keys = np.full((n_queries, k), -1, dtype=np.int64)
            dists = np.full((n_queries, k), np.inf, dtype=np.float64)
            for i, row in enumerate(matrix):
                ids, row_dists = shard._scan_raw(row, shard._query_norm(row), k)
                keys[i, : ids.shape[0]] = shard._key_arr[ids]
                dists[i, : row_dists.shape[0]] = row_dists
            return keys, dists
        if self.large_shard_search == "beam":
            return shard.search_batch_arrays(matrix, k, ef=self._split_ef(k, ef))
        shard._ensure_router()
        probes = self._probe_width(shard._router_centroid_ids.shape[0])
        ids, dists = shard._routed_scan_batch(matrix, k, probes)
        keys = np.full(ids.shape, -1, dtype=np.int64)
        valid = ids >= 0
        keys[valid] = shard._key_arr[ids[valid]]
        return keys, dists

    @staticmethod
    def _merge_arrays(
        per_shard: list[tuple[np.ndarray, np.ndarray]], k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge per-shard answer blocks under the declared deterministic order.

        One lexsort over the stacked ``(n_queries, n_shards * k)`` blocks,
        keyed by ``(distance, shard index, within-shard rank)`` — the same
        total order the old per-query Python tuple sort produced, since
        ``(shard, rank)`` is already unique.  Pad entries carry distance
        ``+inf`` so they sort after every real candidate.
        """
        all_keys = np.concatenate([keys for keys, _ in per_shard], axis=1)
        all_dists = np.concatenate([dists for _, dists in per_shard], axis=1)
        n_queries, width = all_keys.shape
        shard_ids = np.repeat(np.arange(len(per_shard)), k)
        ranks = np.tile(np.arange(k), len(per_shard))
        order = np.lexsort(
            (
                np.broadcast_to(ranks, (n_queries, width)),
                np.broadcast_to(shard_ids, (n_queries, width)),
                all_dists,
            ),
            axis=-1,
        )[:, :k]
        return (
            np.take_along_axis(all_keys, order, axis=1),
            np.take_along_axis(all_dists, order, axis=1),
        )

    def _fan_out(
        self, matrix: np.ndarray, k: int, ef: int | None, parallel: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merged ``(keys, dists)`` arrays for a validated query matrix."""
        if self.n_shards == 1:
            # Pure delegation: same ef, beam only — bit-identical to the
            # monolithic index (pinned by tests).
            return self._shards[0].search_batch_arrays(matrix, k, ef)
        if parallel:
            pool = self._ensure_pool()
            per_shard = list(
                pool.map(
                    lambda s: self._shard_arrays(s, matrix, k, ef),
                    range(self.n_shards),
                )
            )
        else:
            per_shard = [
                self._shard_arrays(s, matrix, k, ef) for s in range(self.n_shards)
            ]
        return self._merge_arrays(per_shard, k)

    @staticmethod
    def _rows_to_tuples(
        keys: np.ndarray, dists: np.ndarray
    ) -> list[list[tuple[int, float]]]:
        """Tuple view of padded result arrays (pads are a sorted tail)."""
        out: list[list[tuple[int, float]]] = []
        for row_keys, row_dists in zip(keys, dists):
            pad = (row_keys == -1) & np.isinf(row_dists)
            n_valid = int(row_keys.shape[0] - np.count_nonzero(pad))
            out.append(
                list(zip(row_keys[:n_valid].tolist(), row_dists[:n_valid].tolist()))
            )
        return out

    def _observe_search(self, span, mode: str) -> None:
        self.obs.metrics.histogram(
            "pas_ann_search_ticks",
            buckets=_SEARCH_TICK_BUCKETS,
            help="ANN search span duration in tracer ticks.",
        ).observe(
            span.duration_ticks,
            mode=mode,
            quantized=str(self.quantization != "none").lower(),
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def add(self, vector: np.ndarray, key: int) -> None:
        """Insert one vector; element ``i`` lands on shard ``i % n_shards``."""
        key = self._check_key(key)
        self._shards[self._count % self.n_shards].add(vector, key)
        self._count += 1

    def add_batch(
        self,
        vectors: np.ndarray,
        keys: Iterable[int] | None = None,
        parallel: bool = True,
    ) -> None:
        """Insert many vectors, building every shard's slice concurrently.

        The whole batch is validated — shapes *and* keys, including
        duplicates within the batch — before any shard is touched, so a
        rejected batch leaves the index byte-identical.  Round-robin
        assignment continues from the current element count, so the shard
        contents are identical to calling :meth:`add` per row; with
        ``parallel=True`` the per-shard ``add_batch`` calls run on the
        index's thread pool (each shard is an independent graph, so the
        result does not depend on scheduling).
        """
        matrix = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if matrix.shape[0] == 0:
            return
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        key_list = (
            list(range(self._count, self._count + matrix.shape[0]))
            if keys is None
            else [int(k) for k in keys]
        )
        if len(key_list) != matrix.shape[0]:
            raise IndexError_(
                f"got {matrix.shape[0]} vectors but {len(key_list)} keys"
            )
        batch_seen: set[int] = set()
        for key in key_list:
            if key in self._keys_seen or key in batch_seen:
                raise IndexError_(f"duplicate key {key}")
            batch_seen.add(key)
        per_shard_rows: list[list[int]] = [[] for _ in self._shards]
        per_shard_keys: list[list[int]] = [[] for _ in self._shards]
        for row, key in enumerate(key_list):
            shard = (self._count + row) % self.n_shards
            per_shard_rows[shard].append(row)
            per_shard_keys[shard].append(key)

        def build(shard: int) -> None:
            if per_shard_rows[shard]:
                self._shards[shard].add_batch(
                    matrix[per_shard_rows[shard]], per_shard_keys[shard]
                )

        if parallel and self.n_shards > 1:
            list(self._ensure_pool().map(build, range(self.n_shards)))
        else:
            for shard in range(self.n_shards):
                build(shard)
        self._keys_seen |= batch_seen
        self._count += matrix.shape[0]

    def search(
        self, query: np.ndarray, k: int, ef: int | None = None
    ) -> list[tuple[int, float]]:
        """Up to ``k`` ``(key, distance)`` pairs merged across all shards."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {query.shape[0]}")
        if self._count == 0:
            return []
        with self.obs.tracer.span(
            "ann.search", mode="scalar", k=k, n_shards=self.n_shards
        ) as span:
            self.obs.metrics.counter(
                "pas_ann_searches_total", help="ANN searches by mode."
            ).inc(mode="scalar")
            keys, dists = self._fan_out(query[np.newaxis, :], k, ef, parallel=False)
            hits = self._rows_to_tuples(keys, dists)[0]
        self._observe_search(span, "scalar")
        return hits

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef: int | None = None,
        parallel: bool = True,
    ) -> list[list[tuple[int, float]]]:
        """k-NN lists for a ``(n, dim)`` query matrix, one per row.

        A thin tuple view over :meth:`search_batch_arrays` — bit-identical
        to ``[self.search(q, k, ef) for q in queries]`` regardless of
        thread timing, because shard results are keyed by shard index and
        scalar and batched paths share one fan-out/merge core.
        """
        keys, dists, n_queries = self._search_batch_validated(queries, k, ef, parallel)
        if keys is None:
            return [[] for _ in range(n_queries)]
        return self._rows_to_tuples(keys, dists)

    def search_batch_arrays(
        self,
        queries: np.ndarray,
        k: int,
        ef: int | None = None,
        parallel: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array-native batch search: ``(keys, dists)`` of shape ``(n, k)``.

        Row ``i`` holds the same hits, in the same order, as
        ``search_batch(queries, k, ef)[i]``; when fewer than ``k``
        elements exist the row tail is padded with key ``-1`` and distance
        ``+inf`` (a pad entry always has both).
        """
        keys, dists, n_queries = self._search_batch_validated(queries, k, ef, parallel)
        if keys is None:
            return (
                np.full((n_queries, k), -1, dtype=np.int64),
                np.full((n_queries, k), np.inf, dtype=np.float64),
            )
        return keys, dists

    def _search_batch_validated(
        self, queries: np.ndarray, k: int, ef: int | None, parallel: bool
    ) -> tuple[np.ndarray | None, np.ndarray | None, int]:
        """Shared validation + instrumented fan-out for both batch surfaces.

        Returns ``(keys, dists, n_queries)``; ``keys is None`` signals an
        empty index (callers render their own empty shape).
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.size == 0 and matrix.ndim <= 2:
            return None, None, 0
        matrix = np.atleast_2d(matrix)
        if matrix.ndim != 2:
            raise IndexError_(f"queries must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        if self._count == 0:
            return None, None, int(matrix.shape[0])
        with self.obs.tracer.span(
            "ann.search",
            mode="batch",
            k=k,
            n_queries=int(matrix.shape[0]),
            n_shards=self.n_shards,
        ) as span:
            self.obs.metrics.counter(
                "pas_ann_searches_total", help="ANN searches by mode."
            ).inc(mode="batch")
            keys, dists = self._fan_out(matrix, k, ef, parallel)
        self._observe_search(span, "batch")
        return keys, dists, int(matrix.shape[0])
