"""A sharded HNSW index: K independent graphs, one deterministic merge.

The monolithic :class:`~repro.ann.hnsw.HnswIndex` builds one graph over the
whole corpus; at serving scale both construction and the per-query beam
search grow with corpus size.  ``ShardedHnswIndex`` partitions the vectors
round-robin across K independent ``HnswIndex`` shards, so

* **build** inserts into K graphs of ``n / K`` nodes each — cheaper even
  serially, because insertion cost grows with graph size — and runs the
  per-shard builds in a thread pool (numpy releases the GIL inside the
  gather+gemv distance kernel);
* **search** fans each query out to every shard and merges the per-shard
  top-k lists.

Parallelism never leaks into results: each shard's graph depends only on
its own slice of the data, per-shard result lists are collected *by shard
index* (not completion order), and the merge sorts candidates by the
declared order ``(distance, shard index, within-shard rank)``.  The output
is therefore bit-identical whatever the thread timing, and
``search_batch`` is bit-identical to ``[search(q, k) for q in queries]``
— the same contract every other batched path in the repo carries
(``tests/test_ann_sharded.py`` pins it).
"""

from __future__ import annotations

from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.ann.hnsw import HnswIndex
from repro.errors import IndexError_
from repro.obs import NULL_OBS, Observability

__all__ = ["ShardedHnswIndex"]


class ShardedHnswIndex:
    """Round-robin sharded HNSW with deterministic top-k merging.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_shards:
        Number of independent ``HnswIndex`` shards.  ``n_shards=1`` is
        graph-identical to a plain ``HnswIndex`` with the same seed.
    m / ef_construction / ef_search / metric:
        Forwarded to every shard (see :class:`~repro.ann.hnsw.HnswIndex`).
    seed:
        Shard ``s`` draws its levels from ``seed + s``, so shard graphs
        are independent but the whole index is reproducible.
    max_workers:
        Thread-pool width for parallel build/search (default: one thread
        per shard).
    obs:
        Optional :class:`~repro.obs.Observability` bundle: every
        :meth:`search` / :meth:`search_batch` runs inside an
        ``ann.search`` span (from the *calling* thread — worker threads
        never touch the tracer) and counts into
        ``pas_ann_searches_total``.  Null (free) by default.
    """

    def __init__(
        self,
        dim: int,
        n_shards: int = 4,
        m: int = 16,
        ef_construction: int = 200,
        ef_search: int = 50,
        metric: str = "cosine",
        seed: int = 0,
        max_workers: int | None = None,
        obs: Observability = NULL_OBS,
    ):
        if n_shards < 1:
            raise IndexError_(f"n_shards must be >= 1, got {n_shards}")
        if max_workers is not None and max_workers < 1:
            raise IndexError_(f"max_workers must be >= 1, got {max_workers}")
        self.dim = dim
        self.n_shards = n_shards
        self.max_workers = max_workers
        self.obs = obs
        self._shards = [
            HnswIndex(
                dim=dim,
                m=m,
                ef_construction=ef_construction,
                ef_search=ef_search,
                metric=metric,
                seed=seed + shard,
            )
            for shard in range(n_shards)
        ]
        self._count = 0
        self._keys_seen: set[int] = set()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    @property
    def shard_sizes(self) -> list[int]:
        """Per-shard element counts (round-robin keeps them within 1)."""
        return [len(shard) for shard in self._shards]

    def _pool_width(self) -> int:
        return self.max_workers if self.max_workers is not None else self.n_shards

    def _check_key(self, key: int) -> int:
        key = int(key)
        if key in self._keys_seen:
            raise IndexError_(f"duplicate key {key}")
        self._keys_seen.add(key)
        return key

    @staticmethod
    def _merge(per_shard: list[list[tuple[int, float]]], k: int) -> list[tuple[int, float]]:
        """Merge per-shard top-k lists under the declared deterministic order.

        Candidates sort by ``(distance, shard index, within-shard rank)``;
        the shard lists are already nearest-first, so the merge is a pure
        function of their contents — thread timing cannot reorder it.
        """
        merged = [
            (dist, shard, rank, key)
            for shard, hits in enumerate(per_shard)
            for rank, (key, dist) in enumerate(hits)
        ]
        merged.sort()
        return [(key, dist) for dist, _, _, key in merged[:k]]

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def add(self, vector: np.ndarray, key: int) -> None:
        """Insert one vector; element ``i`` lands on shard ``i % n_shards``."""
        key = self._check_key(key)
        self._shards[self._count % self.n_shards].add(vector, key)
        self._count += 1

    def add_batch(
        self,
        vectors: np.ndarray,
        keys: Iterable[int] | None = None,
        parallel: bool = True,
    ) -> None:
        """Insert many vectors, building every shard's slice concurrently.

        Round-robin assignment continues from the current element count,
        so the shard contents are identical to calling :meth:`add` per
        row; with ``parallel=True`` the per-shard ``add_batch`` calls run
        in a thread pool (each shard is an independent graph, so the
        result does not depend on scheduling).
        """
        matrix = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if matrix.shape[0] == 0:
            return
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        key_list = (
            list(range(self._count, self._count + matrix.shape[0]))
            if keys is None
            else [int(k) for k in keys]
        )
        if len(key_list) != matrix.shape[0]:
            raise IndexError_(
                f"got {matrix.shape[0]} vectors but {len(key_list)} keys"
            )
        per_shard_rows: list[list[int]] = [[] for _ in self._shards]
        per_shard_keys: list[list[int]] = [[] for _ in self._shards]
        for row, key in enumerate(key_list):
            shard = (self._count + row) % self.n_shards
            per_shard_rows[shard].append(row)
            per_shard_keys[shard].append(self._check_key(key))

        def build(shard: int) -> None:
            if per_shard_rows[shard]:
                self._shards[shard].add_batch(
                    matrix[per_shard_rows[shard]], per_shard_keys[shard]
                )

        if parallel and self.n_shards > 1:
            with ThreadPoolExecutor(max_workers=self._pool_width()) as pool:
                list(pool.map(build, range(self.n_shards)))
        else:
            for shard in range(self.n_shards):
                build(shard)
        self._count += matrix.shape[0]

    def search(
        self, query: np.ndarray, k: int, ef: int | None = None
    ) -> list[tuple[int, float]]:
        """Up to ``k`` ``(key, distance)`` pairs merged across all shards."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {query.shape[0]}")
        if self._count == 0:
            return []
        with self.obs.tracer.span(
            "ann.search", mode="scalar", k=k, n_shards=self.n_shards
        ):
            self.obs.metrics.counter(
                "pas_ann_searches_total", help="ANN searches by mode."
            ).inc(mode="scalar")
            per_shard = [shard.search(query, k, ef) for shard in self._shards]
            return self._merge(per_shard, k)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef: int | None = None,
        parallel: bool = True,
    ) -> list[list[tuple[int, float]]]:
        """k-NN lists for a ``(n, dim)`` query matrix, one per row.

        Each shard answers the whole batch (in a thread pool when
        ``parallel=True``); per-query merges then run over the per-shard
        lists in shard order.  Bit-identical to
        ``[self.search(q, k, ef) for q in queries]`` regardless of thread
        timing, because shard results are keyed by shard index and each
        shard's ``search_batch`` already matches its scalar ``search``.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.size == 0 and matrix.ndim <= 2:
            return []
        matrix = np.atleast_2d(matrix)
        if matrix.ndim != 2:
            raise IndexError_(f"queries must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        if self._count == 0:
            return [[] for _ in range(matrix.shape[0])]
        with self.obs.tracer.span(
            "ann.search",
            mode="batch",
            k=k,
            n_queries=int(matrix.shape[0]),
            n_shards=self.n_shards,
        ):
            self.obs.metrics.counter(
                "pas_ann_searches_total", help="ANN searches by mode."
            ).inc(mode="batch")
            if parallel and self.n_shards > 1:
                with ThreadPoolExecutor(max_workers=self._pool_width()) as pool:
                    per_shard = list(
                        pool.map(lambda s: s.search_batch(matrix, k, ef), self._shards)
                    )
            else:
                per_shard = [shard.search_batch(matrix, k, ef) for shard in self._shards]
            return [
                self._merge([hits[row] for hits in per_shard], k)
                for row in range(matrix.shape[0])
            ]
