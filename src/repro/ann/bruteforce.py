"""Exact nearest-neighbour index used as ground truth in recall tests."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import IndexError_

__all__ = ["BruteForceIndex"]


class BruteForceIndex:
    """Exact k-NN via a full distance scan.

    Distances follow the same convention as :class:`repro.ann.hnsw.HnswIndex`:
    cosine *distance* (``1 - cosine similarity``) or squared L2.

    The stacked ``(n, dim)`` matrix and its row norms are cached between
    searches and invalidated on insert, so ground-truth sweeps at bench
    scale (1k queries against 100k rows) do not re-stack the corpus per
    query.
    """

    def __init__(self, dim: int, metric: str = "cosine"):
        if dim <= 0:
            raise IndexError_(f"dim must be positive, got {dim}")
        if metric not in ("cosine", "l2"):
            raise IndexError_(f"unknown metric {metric!r}")
        self.dim = dim
        self.metric = metric
        self._vectors: list[np.ndarray] = []
        self._keys: list[int] = []
        self._matrix: np.ndarray | None = None
        self._row_norms: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, vector: np.ndarray, key: int) -> None:
        vec = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {vec.shape[0]}")
        self._vectors.append(vec)
        self._keys.append(int(key))
        self._matrix = None
        self._row_norms = None

    def add_batch(
        self, vectors: np.ndarray, keys: Iterable[int] | None = None
    ) -> None:
        """Insert many vectors at once (keys default to ``0..n-1``)."""
        matrix = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if matrix.shape[0] == 0:
            return
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        key_list = list(range(matrix.shape[0])) if keys is None else [int(k) for k in keys]
        if len(key_list) != matrix.shape[0]:
            raise IndexError_(
                f"got {matrix.shape[0]} vectors but {len(key_list)} keys"
            )
        for row, key in zip(matrix, key_list):
            self.add(row, key)

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.vstack(self._vectors)
            if self.metric == "cosine":
                self._row_norms = np.linalg.norm(self._matrix, axis=1)
        return self._matrix

    def _distances(self, query: np.ndarray) -> np.ndarray:
        mat = self._ensure_matrix()
        if self.metric == "l2":
            diff = mat - query
            return np.einsum("ij,ij->i", diff, diff)
        qn = np.linalg.norm(query)
        mn = self._row_norms
        denom = np.where(mn * qn < 1e-12, 1.0, mn * qn)
        return 1.0 - (mat @ query) / denom

    def search(self, query: np.ndarray, k: int) -> list[tuple[int, float]]:
        """Return up to ``k`` ``(key, distance)`` pairs, nearest first."""
        if not self._keys:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {query.shape[0]}")
        dists = self._distances(query)
        k = min(k, len(self._keys))
        order = np.argsort(dists, kind="stable")[:k]
        return [(self._keys[i], float(dists[i])) for i in order]

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> list[list[tuple[int, float]]]:
        """k-NN lists for a ``(n, dim)`` query matrix, one per row.

        Result-identical to ``[self.search(q, k) for q in queries]`` (each
        row runs through the same per-query kernel).
        """
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.size == 0 and matrix.ndim <= 2:
            return []
        matrix = np.atleast_2d(matrix)
        if matrix.ndim != 2:
            raise IndexError_(f"queries must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {matrix.shape[1]}")
        return [self.search(row, k) for row in matrix]
