"""Exact nearest-neighbour index used as ground truth in recall tests."""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_

__all__ = ["BruteForceIndex"]


class BruteForceIndex:
    """Exact k-NN via a full distance scan.

    Distances follow the same convention as :class:`repro.ann.hnsw.HnswIndex`:
    cosine *distance* (``1 - cosine similarity``) or squared L2.
    """

    def __init__(self, dim: int, metric: str = "cosine"):
        if dim <= 0:
            raise IndexError_(f"dim must be positive, got {dim}")
        if metric not in ("cosine", "l2"):
            raise IndexError_(f"unknown metric {metric!r}")
        self.dim = dim
        self.metric = metric
        self._vectors: list[np.ndarray] = []
        self._keys: list[int] = []

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, vector: np.ndarray, key: int) -> None:
        vec = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {vec.shape[0]}")
        self._vectors.append(vec)
        self._keys.append(int(key))

    def _distances(self, query: np.ndarray) -> np.ndarray:
        mat = np.vstack(self._vectors)
        if self.metric == "l2":
            diff = mat - query
            return np.einsum("ij,ij->i", diff, diff)
        qn = np.linalg.norm(query)
        mn = np.linalg.norm(mat, axis=1)
        denom = np.where(mn * qn < 1e-12, 1.0, mn * qn)
        return 1.0 - (mat @ query) / denom

    def search(self, query: np.ndarray, k: int) -> list[tuple[int, float]]:
        """Return up to ``k`` ``(key, distance)`` pairs, nearest first."""
        if not self._keys:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise IndexError_(f"expected dim {self.dim}, got {query.shape[0]}")
        dists = self._distances(query)
        k = min(k, len(self._keys))
        order = np.argsort(dists, kind="stable")[:k]
        return [(self._keys[i], float(dists[i])) for i in order]
