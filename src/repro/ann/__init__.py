"""Approximate nearest-neighbour indexes (HNSW, paper §3.1)."""

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.ann.ivf import IvfFlatIndex

__all__ = ["HnswIndex", "BruteForceIndex", "IvfFlatIndex"]
