"""Approximate nearest-neighbour indexes (HNSW, paper §3.1)."""

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.hnsw import HnswIndex
from repro.ann.ivf import IvfFlatIndex
from repro.ann.sharded import ShardedHnswIndex

__all__ = ["HnswIndex", "BruteForceIndex", "IvfFlatIndex", "ShardedHnswIndex"]
