"""Exception hierarchy for the PAS reproduction library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary without masking programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class UnknownModelError(ReproError):
    """A model name was requested that is not in the registry."""


class NotFittedError(ReproError):
    """A trainable component was used before ``fit``/``train`` was called."""


class EmptyDatasetError(ReproError):
    """An operation that requires data received an empty dataset."""


class GenerationError(ReproError):
    """The data-generation pipeline could not produce a valid pair."""


class IndexError_(ReproError):
    """An ANN index was used incorrectly (e.g. dimension mismatch)."""


class BudgetExceededError(ReproError):
    """A simulated API budget (request or token limit) was exhausted."""


class AugmentationError(ReproError):
    """Producing the complementary prompt failed (the raw prompt still works)."""


class DeadlineExceededError(ReproError):
    """A request's logical-time deadline budget cannot fit another attempt.

    Raised by :class:`~repro.llm.api.ChatClient` when a
    :class:`~repro.resilience.RetryPolicy` deadline is set; carries an
    ``attempts`` attribute with the number of attempts actually made.
    """


class CircuitOpenError(ReproError):
    """A per-model circuit breaker rejected the request without trying it."""
