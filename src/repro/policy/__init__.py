"""Adaptive augmentation policies: the serve→judge→select loop.

PAS emits one complement per prompt; this package makes that a *choice*.
Per request, a :class:`~repro.policy.candidates.CandidateGenerator`
renders k deterministic strategy variants (the PAS complement itself, a
salt-perturbed re-phrasing, an aspect-subset hedge, and the no-augment
control), a :class:`~repro.policy.scoring.PolicyScorer` turns the LLM
judge into a seed-pure reward signal, a
:class:`~repro.policy.bandit.ContextualBandit` learns per
``(category, tenant)`` which strategy wins, and a
:class:`~repro.policy.feedback.GoldenRefresh` promotes gated winners back
into the pipeline's golden exemplars.  :class:`~repro.policy.policy
.AugmentationPolicy` is the bundle the serving stack plugs in
(``PasGateway(..., policy=...)``); with no policy the gateway is
byte-identical to the unpoliced stack.

Everything here is replay-deterministic: decisions are pure functions of
``(config, corpus, logical clock)``, rewards are pure functions of
``(judge seed, prompt, response)``, and the bandit's exact integer /
rational state serializes losslessly for bit-identical resume.
"""

from repro.policy.bandit import BANDIT_ALGORITHMS, ContextualBandit
from repro.policy.candidates import (
    STRATEGIES,
    Candidate,
    CandidateGenerator,
    CandidateSet,
)
from repro.policy.feedback import GoldenRefresh
from repro.policy.policy import AugmentationPolicy, PolicyConfig
from repro.policy.scoring import PolicyScorer, PromptResolver

__all__ = [
    "AugmentationPolicy",
    "BANDIT_ALGORITHMS",
    "Candidate",
    "CandidateGenerator",
    "CandidateSet",
    "ContextualBandit",
    "GoldenRefresh",
    "PolicyConfig",
    "PolicyScorer",
    "PromptResolver",
    "STRATEGIES",
]
