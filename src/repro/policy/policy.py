"""The adaptive augmentation policy: candidates → score → select → feedback.

:class:`AugmentationPolicy` ties the four policy parts together behind
the small surface the gateway needs:

* :meth:`select` — one bandit decision per serve, keyed on the request's
  ``(category, tenant)`` context and the gateway's logical clock;
* :meth:`complement_for` — the chosen strategy's complement text
  (``static`` reuses the complement the gateway already computed, so the
  cache tiers behave exactly as they do without a policy);
* :meth:`observe` — the online reward: judge the served response, update
  the bandit, and buffer the pair for golden promotion.  Off-corpus
  prompts yield no reward and no update — the policy still serves them,
  it just doesn't learn from them;
* :meth:`as_dict` / :meth:`from_config` — full state serialization: a
  :class:`PolicyConfig` whose ``state`` carries the bandit's exact
  counts resumes the policy bit-identically.

Everything is a pure function of ``(config, corpus, request stream)`` —
no wall clock, no global RNG — so two gateways serving the same trace
with the same policy config make byte-identical decisions.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.judge.judge import JudgeConfig, LlmJudge
from repro.policy.bandit import BANDIT_ALGORITHMS, ContextualBandit
from repro.policy.candidates import STRATEGIES, CandidateGenerator, CandidateSet
from repro.policy.feedback import GoldenRefresh
from repro.policy.scoring import PolicyScorer, PromptResolver
from repro.utils.serialize import register
from repro.world.prompts import SyntheticPrompt

__all__ = ["PolicyConfig", "AugmentationPolicy"]

#: Tenant label used for anonymous traffic in bandit contexts.
ANONYMOUS_TENANT = "anonymous"


@dataclass(frozen=True)
class PolicyConfig:
    """Everything configurable about an :class:`AugmentationPolicy`.

    ``enabled`` is the deployment switch read by
    :class:`~repro.serve.config.ServingConfig` consumers — the config
    section exists (and round-trips) either way, but only an enabled
    section should be materialised into a live policy.  ``strategies``
    are the bandit arms (k = ``len(strategies)``); ``algorithm`` /
    ``epsilon`` / ``ucb_c`` / ``seed`` parameterise the bandit; ``salt``
    perturbs the ``salted`` candidate's template draw; ``judge_seed``
    seeds the reward judge (required when enabled — scoring without a
    pinned judge seed would break replay); ``quality_gate`` and
    ``max_promoted_per_category`` shape the golden-refresh feedback hook.
    ``state`` carries a serialized bandit (``ContextualBandit.as_dict``)
    so a checkpointed policy round-trips through the config.
    """

    enabled: bool = False
    strategies: tuple[str, ...] = STRATEGIES
    algorithm: str = "epsilon_greedy"
    epsilon: float = 0.1
    ucb_c: float = 2.0
    salt: int = 1
    seed: int = 0
    judge_seed: int | None = None
    quality_gate: float = 4.0
    max_promoted_per_category: int = 3
    state: dict | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.strategies, tuple):
            object.__setattr__(self, "strategies", tuple(self.strategies))
        if len(self.strategies) < 1:
            raise ConfigError("policy needs at least one strategy (k >= 1)")
        unknown = [s for s in self.strategies if s not in STRATEGIES]
        if unknown:
            raise ConfigError(
                f"unknown strategies {unknown}; expected a subset of {STRATEGIES}"
            )
        if len(set(self.strategies)) != len(self.strategies):
            raise ConfigError(f"duplicate strategies: {sorted(self.strategies)}")
        if self.algorithm not in BANDIT_ALGORITHMS:
            raise ConfigError(
                f"unknown bandit algorithm {self.algorithm!r}; "
                f"expected one of {BANDIT_ALGORITHMS}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigError(f"epsilon must be in [0, 1], got {self.epsilon}")
        if self.ucb_c < 0:
            raise ConfigError(f"ucb_c must be >= 0, got {self.ucb_c}")
        if not 0.0 <= self.quality_gate <= 5.0:
            raise ConfigError(
                f"quality_gate must be in [0, 5], got {self.quality_gate}"
            )
        if self.max_promoted_per_category < 1:
            raise ConfigError(
                "max_promoted_per_category must be >= 1, "
                f"got {self.max_promoted_per_category}"
            )

    def validate(self) -> None:
        """The cross-section check: an enabled policy needs a judge seed.

        Scoring rewards with an unpinned judge would make serve replays
        diverge, so :class:`~repro.serve.config.ServingConfig.validate`
        refuses the combination.
        """
        if self.enabled and self.judge_seed is None:
            raise ConfigError(
                "an enabled policy requires judge_seed (the reward judge "
                "must be seed-pinned for replay determinism)"
            )

    def as_dict(self) -> dict:
        """JSON-safe dict: ``PolicyConfig.from_dict(c.as_dict()) == c``."""
        return {
            "enabled": self.enabled,
            "strategies": list(self.strategies),
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "ucb_c": self.ucb_c,
            "salt": self.salt,
            "seed": self.seed,
            "judge_seed": self.judge_seed,
            "quality_gate": self.quality_gate,
            "max_promoted_per_category": self.max_promoted_per_category,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PolicyConfig":
        """Inverse of :meth:`as_dict`; unknown keys raise ``TypeError``."""
        return cls(**data)


register(PolicyConfig)


class AugmentationPolicy:
    """One live policy: generator + scorer + bandit + feedback.

    ``corpus`` is the annotated prompt population the deployment serves
    (reward lookup and context categories come from it); ``judge``
    overrides the reward judge (defaults to one seeded by
    ``config.judge_seed``); ``feedback=None`` builds a
    :class:`~repro.policy.feedback.GoldenRefresh` from the config
    (``checkpoint_dir`` is threaded into it).
    """

    def __init__(
        self,
        pas,
        config: PolicyConfig | None = None,
        *,
        corpus: Iterable[SyntheticPrompt] = (),
        judge: LlmJudge | None = None,
        feedback: GoldenRefresh | None = None,
        checkpoint_dir=None,
    ):
        self.config = config or PolicyConfig()
        self.pas = pas
        self.generator = CandidateGenerator(
            pas, strategies=self.config.strategies, salt=self.config.salt
        )
        if judge is None:
            judge = LlmJudge(JudgeConfig(seed=self.config.judge_seed or 0))
        self.resolver = PromptResolver(corpus)
        self.scorer = PolicyScorer(judge, self.resolver)
        if self.config.state is not None:
            self.bandit = ContextualBandit.from_dict(self.config.state)
            if self.bandit.arms != self.config.strategies:
                raise ConfigError(
                    f"serialized bandit arms {self.bandit.arms} do not match "
                    f"config strategies {self.config.strategies}"
                )
        else:
            self.bandit = ContextualBandit(
                self.config.strategies,
                algorithm=self.config.algorithm,
                epsilon=self.config.epsilon,
                ucb_c=self.config.ucb_c,
                seed=self.config.seed,
            )
        self.feedback = (
            feedback
            if feedback is not None
            else GoldenRefresh(
                quality_gate=self.config.quality_gate,
                max_per_category=self.config.max_promoted_per_category,
                checkpoint_dir=checkpoint_dir,
            )
        )

    @classmethod
    def from_config(
        cls,
        pas,
        config: PolicyConfig,
        *,
        corpus: Iterable[SyntheticPrompt] = (),
        judge: LlmJudge | None = None,
        checkpoint_dir=None,
    ) -> "AugmentationPolicy":
        """Materialise an enabled config section into a live policy."""
        config.validate()
        return cls(
            pas, config, corpus=corpus, judge=judge, checkpoint_dir=checkpoint_dir
        )

    # ------------------------------------------------------------------ #
    # the gateway surface
    # ------------------------------------------------------------------ #

    @property
    def strategies(self) -> tuple[str, ...]:
        return self.generator.strategies

    def context_for(self, prompt_text: str, tenant: str | None) -> tuple[str, str]:
        """The bandit context of one request."""
        return (
            self.resolver.category_for(prompt_text),
            tenant if tenant is not None else ANONYMOUS_TENANT,
        )

    def select(
        self, context: tuple[str, str], tick: int, *, explore: bool = True
    ) -> str:
        """One pure bandit decision at logical time ``tick``."""
        return self.bandit.select(context, tick, explore=explore)

    def complement_for(
        self,
        prompt_text: str,
        strategy: str,
        *,
        static: str | None = None,
        embed_cache=None,
    ) -> str:
        """The chosen strategy's complement text.

        ``static`` short-circuits the ``static`` and ``none`` strategies
        without a predictor pass — the gateway hands in the complement it
        already computed through its cache tiers, which is bit-identical
        to the generator's ``static`` render (the parity test pins this).
        """
        if strategy == "none":
            return ""
        if strategy == "static" and static is not None:
            return static
        aspects = self.pas.predictor.predict_aspects(
            prompt_text, embed_cache=embed_cache
        )
        return self.generator._render(strategy, prompt_text, aspects)

    def candidates(self, prompt_text: str, embed_cache=None) -> CandidateSet:
        """All k candidates for one prompt (the offline scoring surface)."""
        return self.generator.generate(prompt_text, embed_cache=embed_cache)

    def observe(
        self,
        prompt_text: str,
        context: tuple[str, str],
        strategy: str,
        complement: str,
        response_text: str,
    ) -> float | None:
        """Judge one served response and learn from it.

        Returns the reward, or ``None`` when the prompt is off-corpus
        (no annotations → no oracle → no update).
        """
        prompt = self.resolver.resolve(prompt_text)
        if prompt is None:
            return None
        reward = self.scorer.score(prompt, response_text)
        self.bandit.observe(context, strategy, reward)
        self.feedback.record(prompt, complement, reward)
        return reward

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """The bandit's exact state (JSON-safe)."""
        return self.bandit.as_dict()

    def as_dict(self) -> dict:
        """The policy as a resumable config section: ``PolicyConfig
        .from_dict(policy.as_dict())`` + the same corpus rebuilds a
        policy that decides bit-identically from here on."""
        config = self.config.as_dict()
        config["state"] = self.snapshot()
        return config

    def __repr__(self) -> str:
        return (
            f"AugmentationPolicy(strategies={self.strategies!r}, "
            f"algorithm={self.bandit.algorithm!r}, corpus={len(self.resolver)}, "
            f"pulls={self.bandit.total_pulls})"
        )
