"""Online curation: promote winning pairs into the golden exemplars.

The paper's ``D_golden`` (§3.2) is a tiny hand-curated seed set.  The
policy loop produces exactly the evidence needed to grow it online: every
``ok`` serve yields a ``(prompt, complement, judged reward)`` triple.
:class:`GoldenRefresh` buffers those observations and, behind a quality
gate, promotes the best per category into a new
:class:`~repro.core.golden.GoldenData` — the serve→judge→select loop
feeding back into the pipeline's few-shot exemplars.

The refresh is checkpointed the way :class:`~repro.pipeline.runner
.PipelineRunner` stages are: the promoted payload is written with a
content hash under a run key derived from the *inputs* (gate, cap,
observation buffer, and the golden data being refreshed).  A re-run with
the same inputs reloads the checkpoint and rebuilds the identical
GoldenData without recomputing; a payload that doesn't match its recorded
hash raises :class:`~repro.pipeline.runner.CheckpointError` (a corrupted
checkpoint must never silently alter the exemplar set the whole pipeline
conditions on).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.golden import GoldenData, GoldenPair
from repro.errors import ConfigError
from repro.pipeline.runner import CheckpointError
from repro.utils.rng import stable_hash
from repro.world.prompts import SyntheticPrompt

__all__ = ["GoldenRefresh"]

_CHECKPOINT_NAME = "golden_refresh.json"


def _content_hash(payload: object) -> str:
    material = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return f"{stable_hash(material):016x}"


class GoldenRefresh:
    """Quality-gated promotion of policy winners into golden exemplars.

    ``quality_gate`` is the minimum judged reward (0–5) a pair must have
    earned; ``max_per_category`` caps how many promotions one refresh may
    add per category (golden stays a *tiny* curated set — that is the
    paper's point).  ``checkpoint_dir=None`` keeps the refresh in memory
    (same semantics, no cross-process resume).
    """

    def __init__(
        self,
        *,
        quality_gate: float = 4.0,
        max_per_category: int = 3,
        checkpoint_dir: str | Path | None = None,
    ):
        if not 0.0 <= quality_gate <= 5.0:
            raise ConfigError(f"quality_gate must be in [0, 5], got {quality_gate}")
        if max_per_category < 1:
            raise ConfigError(
                f"max_per_category must be >= 1, got {max_per_category}"
            )
        self.quality_gate = float(quality_gate)
        self.max_per_category = int(max_per_category)
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        # (uid, complement) -> observation; repeats keep the best reward,
        # so the buffer is order-insensitive up to max() ties.
        self._records: dict[tuple[int, str], dict] = {}

    # ------------------------------------------------------------------ #
    # observation buffer
    # ------------------------------------------------------------------ #

    def record(self, prompt: SyntheticPrompt, complement: str, reward: float) -> None:
        """Buffer one judged serve (empty complements are never exemplars)."""
        if not complement:
            return
        key = (prompt.uid, complement)
        existing = self._records.get(key)
        if existing is None or float(reward) > existing["reward"]:
            self._records[key] = {
                "prompt": prompt,
                "complement": complement,
                "reward": float(reward),
            }

    @property
    def n_records(self) -> int:
        return len(self._records)

    def as_dict(self) -> dict:
        """JSON-safe observation buffer (for policy checkpointing)."""
        return {
            "quality_gate": self.quality_gate,
            "max_per_category": self.max_per_category,
            "records": [
                {
                    "prompt": record["prompt"].as_dict(),
                    "complement": record["complement"],
                    "reward": record["reward"],
                }
                for _, record in sorted(self._records.items())
            ],
        }

    @classmethod
    def from_dict(
        cls, data: dict, checkpoint_dir: str | Path | None = None
    ) -> "GoldenRefresh":
        """Inverse of :meth:`as_dict` (lossless)."""
        refresh = cls(
            quality_gate=float(data["quality_gate"]),
            max_per_category=int(data["max_per_category"]),
            checkpoint_dir=checkpoint_dir,
        )
        for record in data["records"]:
            refresh.record(
                SyntheticPrompt.from_dict(record["prompt"]),
                record["complement"],
                float(record["reward"]),
            )
        return refresh

    # ------------------------------------------------------------------ #
    # promotion
    # ------------------------------------------------------------------ #

    def promoted(self) -> dict[str, list[dict]]:
        """Gated winners per category, best first (pure, no checkpoint).

        Ranking is exact and tie-stable: reward descending, then prompt
        uid, then complement text.
        """
        by_category: dict[str, list[dict]] = {}
        for _, record in self._records.items():
            if record["reward"] >= self.quality_gate:
                by_category.setdefault(record["prompt"].category, []).append(record)
        out: dict[str, list[dict]] = {}
        for category in sorted(by_category):
            ranked = sorted(
                by_category[category],
                key=lambda r: (-r["reward"], r["prompt"].uid, r["complement"]),
            )
            out[category] = ranked[: self.max_per_category]
        return out

    def _run_key(self, golden: GoldenData) -> str:
        """Content hash of every input the refresh outcome depends on."""
        golden_digest = {
            category: [
                [pair.prompt.as_dict(), pair.complement]
                for pair in golden.exemplars(category)
            ]
            for category in golden.categories()
        }
        return _content_hash({"buffer": self.as_dict(), "golden": golden_digest})

    def refresh(self, golden: GoldenData) -> GoldenData:
        """A new :class:`GoldenData` with the gated winners appended.

        Existing exemplars are preserved verbatim; a winner whose exact
        ``(prompt uid, complement)`` is already an exemplar in its
        category is skipped (refresh is idempotent).  With a
        ``checkpoint_dir``, the promotion payload is checkpointed and a
        re-run with identical inputs rebuilds the identical GoldenData
        from disk.
        """
        run_key = self._run_key(golden)
        payload = self._load_checkpoint(run_key)
        if payload is None:
            payload = {
                category: [
                    {
                        "prompt": record["prompt"].as_dict(),
                        "complement": record["complement"],
                        "reward": record["reward"],
                    }
                    for record in records
                ]
                for category, records in self.promoted().items()
            }
            self._write_checkpoint(run_key, payload)
        by_category = {
            category: list(golden.exemplars(category))
            for category in golden.categories()
        }
        for category in sorted(payload):
            pairs = by_category.setdefault(category, [])
            existing = {(pair.prompt.uid, pair.complement) for pair in pairs}
            for item in payload[category]:
                prompt = SyntheticPrompt.from_dict(item["prompt"])
                if (prompt.uid, item["complement"]) in existing:
                    continue
                pairs.append(GoldenPair(prompt=prompt, complement=item["complement"]))
        return GoldenData(by_category)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def _checkpoint_path(self) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / _CHECKPOINT_NAME

    def _write_checkpoint(self, run_key: str, payload: dict) -> None:
        path = self._checkpoint_path()
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "run_key": run_key,
            "payload_hash": _content_hash(payload),
            "payload": payload,
        }
        path.write_text(json.dumps(record, sort_keys=True) + "\n")

    def _load_checkpoint(self, run_key: str) -> dict | None:
        path = self._checkpoint_path()
        if path is None or not path.is_file():
            return None
        record = json.loads(path.read_text())
        if record.get("run_key") != run_key:
            # Different inputs: a stale checkpoint is simply ignored (and
            # overwritten by the fresh write).
            return None
        payload = record["payload"]
        if _content_hash(payload) != record.get("payload_hash"):
            raise CheckpointError(
                f"golden-refresh checkpoint at {path} does not match its "
                "recorded content hash"
            )
        return payload
