"""Candidate complement generation: k strategy variants per prompt.

PAS proper emits exactly one complement per prompt (§3.4).  The policy
layer turns that single answer into a *candidate set* the bandit can
choose from, without ever re-training anything — every variant is a
different deterministic rendering of the same predicted aspect set:

* ``static`` — the PAS answer itself, bit-identical to
  :meth:`~repro.core.pas.PasModel.augment` (same salt, same ranking, same
  cap), so choosing it reproduces today's behaviour exactly;
* ``salted`` — the same aspects rendered through
  :func:`~repro.core.golden.render_complement` with a perturbed salt, so
  each aspect picks a *different directive template variant* (same
  guidance, different phrasing — the knob the paper's Figure 4 wording
  diversity suggests);
* ``subset`` — the lowest-weight rendered aspect is dropped, a hedge for
  prompts whose predicted aspects include a spurious one (misleading
  cues make the predictor over-trigger; a shorter complement can win);
* ``none`` — the no-augment control: the empty complement, i.e. serve
  the raw prompt.  PAS never degrading a prompt is an *assumption* the
  bandit gets to test per category.

Generation is batched the same way serving is: one
:meth:`~repro.llm.sft.SftDirectivePredictor.predict_aspects_batch` pass
per unique prompt, then pure string renders per strategy.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.golden import MAX_DIRECTIVES, render_complement
from repro.errors import ConfigError
from repro.world.aspects import ASPECTS

__all__ = ["STRATEGIES", "Candidate", "CandidateSet", "CandidateGenerator"]

#: The strategy vocabulary, in canonical (bandit-arm) order.
STRATEGIES = ("static", "salted", "subset", "none")


@dataclass(frozen=True, slots=True)
class Candidate:
    """One complement variant: the strategy that produced it, and the text."""

    strategy: str
    complement: str


@dataclass(frozen=True)
class CandidateSet:
    """All candidate complements for one prompt, in strategy order."""

    prompt: str
    candidates: tuple[Candidate, ...]

    def complement_for(self, strategy: str) -> str:
        for candidate in self.candidates:
            if candidate.strategy == strategy:
                return candidate.complement
        raise KeyError(f"no candidate for strategy {strategy!r}")

    @property
    def strategies(self) -> tuple[str, ...]:
        return tuple(candidate.strategy for candidate in self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)


def _ranked(aspects: set[str]) -> list[str]:
    """Aspects in render order (highest weight first, capped like PAS)."""
    return sorted(aspects, key=lambda a: (-ASPECTS[a].weight, a))[:MAX_DIRECTIVES]


class CandidateGenerator:
    """Render k complement variants per prompt from one aspect prediction.

    ``salt`` perturbs the ``salted`` strategy's template draw; two
    generators with different salts produce different phrasings, same
    aspects.  The ``static`` candidate is pinned bit-identical to
    ``pas.augment(prompt)`` (the parity test holds the pin), so a policy
    that always picks ``static`` *is* the unpoliced gateway.
    """

    def __init__(self, pas, strategies: Sequence[str] = STRATEGIES, salt: int = 1):
        strategies = tuple(strategies)
        if not strategies:
            raise ConfigError("candidate generator needs at least one strategy")
        unknown = [s for s in strategies if s not in STRATEGIES]
        if unknown:
            raise ConfigError(
                f"unknown strategies {unknown}; expected a subset of {STRATEGIES}"
            )
        if len(set(strategies)) != len(strategies):
            raise ConfigError(f"duplicate strategies: {sorted(strategies)}")
        self.pas = pas
        self.strategies = strategies
        self.salt = int(salt)

    # ------------------------------------------------------------------ #
    # rendering (pure)
    # ------------------------------------------------------------------ #

    def _render(self, strategy: str, prompt_text: str, aspects: set[str]) -> str:
        if strategy == "none" or not aspects:
            return ""
        base = self.pas.base_model_name
        if strategy == "static":
            # The exact PasModel._render salt: byte-identical to augment().
            return render_complement(aspects, salt=f"pas␞{base}␞{prompt_text}")
        if strategy == "salted":
            return render_complement(
                aspects, salt=f"pas-v{self.salt}␞{base}␞{prompt_text}"
            )
        if strategy == "subset":
            keep = _ranked(aspects)[:-1]
            if not keep:
                return ""
            return render_complement(set(keep), salt=f"pas␞{base}␞{prompt_text}")
        raise ConfigError(f"unknown strategy {strategy!r}")

    def variants_from_aspects(self, prompt_text: str, aspects: set[str]) -> CandidateSet:
        """Candidate set from an aspect prediction already in hand."""
        return CandidateSet(
            prompt=prompt_text,
            candidates=tuple(
                Candidate(strategy=s, complement=self._render(s, prompt_text, aspects))
                for s in self.strategies
            ),
        )

    # ------------------------------------------------------------------ #
    # generation (one predictor pass)
    # ------------------------------------------------------------------ #

    def generate(self, prompt_text: str, embed_cache=None) -> CandidateSet:
        """Candidate set for one prompt (one ``predict_aspects`` call)."""
        aspects = self.pas.predictor.predict_aspects(prompt_text, embed_cache=embed_cache)
        return self.variants_from_aspects(prompt_text, aspects)

    def generate_batch(
        self, prompts: Sequence[str], embed_cache=None
    ) -> list[CandidateSet]:
        """Candidate sets for a batch: deduped prompts, one
        ``predict_aspects_batch`` pass, pure renders fanned back out —
        bit-identical to ``[self.generate(p) for p in prompts]``."""
        prompts = list(prompts)
        if not prompts:
            return []
        unique: list[str] = []
        seen: set[str] = set()
        for text in prompts:
            if text not in seen:
                seen.add(text)
                unique.append(text)
        aspect_sets = self.pas.predictor.predict_aspects_batch(
            unique, embed_cache=embed_cache
        )
        by_text = {
            text: self.variants_from_aspects(text, aspects)
            for text, aspects in zip(unique, aspect_sets)
        }
        return [by_text[text] for text in prompts]
