"""Deterministic contextual bandits on the logical clock.

The policy layer's selection problem is a classic multi-armed bandit —
which augmentation strategy wins for *this* kind of prompt — with one
twist: the whole serving stack is replay-deterministic, so the bandit
must be too.  Three choices make it so:

* **no wall clock, no global RNG** — every exploration decision is a pure
  function of ``(seed, context, tick)`` via :func:`~repro.utils.rng
  .stable_hash`; the tick is the gateway's logical clock, which a replay
  reproduces exactly;
* **integer/rational arithmetic** — pull counts are ints and reward sums
  are exact :class:`fractions.Fraction`\\ s, so the exploit argmax never
  depends on float summation order and ties break stably on arm order;
* **full state serialization** — :meth:`ContextualBandit.as_dict` /
  :meth:`ContextualBandit.from_dict` round-trip every context's counts
  and exact reward sums, so a checkpointed policy resumes bit-identically
  (the same contract :class:`~repro.pipeline.runner.PipelineRunner`
  stages keep).

Contexts are ``(category, tenant)`` pairs: the same strategy can win for
``code_generation`` prompts and lose for ``casual_chat``, and two tenants
with different traffic mixes learn independently.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.errors import ConfigError
from repro.utils.rng import stable_hash
from repro.utils.serialize import register

__all__ = ["BANDIT_ALGORITHMS", "ContextualBandit"]

#: Selection rules: ``epsilon_greedy`` — explore with probability epsilon
#: (a deterministic hash draw), exploit the exact-mean argmax otherwise;
#: ``ucb1`` — optimism under uncertainty, the classic
#: ``mean + c * sqrt(ln t / n)`` index (self-exploring, ignores epsilon).
BANDIT_ALGORITHMS = ("epsilon_greedy", "ucb1")

#: The hash draw space: ``stable_hash`` yields 64-bit integers.
_HASH_SPACE = 1 << 64

#: Serialized context keys join category and tenant with the library-wide
#: record separator (neither field may contain it).
_SEP = "␞"


class _ContextState:
    """Per-(category, tenant) accounting: exact pulls and reward sums."""

    __slots__ = ("pulls", "rewards")

    def __init__(self, n_arms: int):
        self.pulls: list[int] = [0] * n_arms
        self.rewards: list[Fraction] = [Fraction(0)] * n_arms

    @property
    def total_pulls(self) -> int:
        return sum(self.pulls)


class ContextualBandit:
    """Learn which arm wins per ``(category, tenant)`` context.

    ``select`` is read-only (decisions are keyed on the caller's logical
    tick, so a failed serve never desynchronises the learner) and
    ``observe`` records one reward for one pulled arm.  Rewards are
    stored as exact :class:`~fractions.Fraction` sums — ``Fraction(x)``
    of a float is exact — so two bandits fed the same history agree on
    every argmax bit for bit, regardless of accumulation order.
    """

    def __init__(
        self,
        arms: tuple[str, ...] | list[str],
        *,
        algorithm: str = "epsilon_greedy",
        epsilon: float = 0.1,
        ucb_c: float = 2.0,
        seed: int = 0,
    ):
        arms = tuple(arms)
        if not arms:
            raise ConfigError("bandit needs at least one arm")
        if len(set(arms)) != len(arms):
            raise ConfigError(f"duplicate arms: {sorted(arms)}")
        if algorithm not in BANDIT_ALGORITHMS:
            raise ConfigError(
                f"unknown bandit algorithm {algorithm!r}; "
                f"expected one of {BANDIT_ALGORITHMS}"
            )
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigError(f"epsilon must be in [0, 1], got {epsilon}")
        if ucb_c < 0:
            raise ConfigError(f"ucb_c must be >= 0, got {ucb_c}")
        self.arms = arms
        self.algorithm = algorithm
        #: Exact rational epsilon: the explore-or-exploit comparison below
        #: is pure integer arithmetic, never a float compare.
        self._epsilon = Fraction(epsilon)
        self.ucb_c = float(ucb_c)
        self.seed = int(seed)
        self._contexts: dict[tuple[str, str], _ContextState] = {}

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #

    def _state(self, context: tuple[str, str]) -> _ContextState:
        state = self._contexts.get(context)
        if state is None:
            state = _ContextState(len(self.arms))
            self._contexts[context] = state
        return state

    def _ctx_key(self, context: tuple[str, str]) -> str:
        category, tenant = context
        return f"{category}{_SEP}{tenant}"

    def select(self, context: tuple[str, str], tick: int, *, explore: bool = True) -> str:
        """Pick one arm for ``context`` at logical time ``tick`` (pure).

        ``explore=False`` forces pure exploitation (the evaluation mode of
        the ablation harness); UCB1 has no explore flag to honour — its
        index term *is* the exploration.
        """
        state = self._contexts.get(context)
        pulls = state.pulls if state is not None else [0] * len(self.arms)
        # Every arm gets pulled once before any policy kicks in, lowest
        # index first — a deterministic initialisation round.
        for i, n in enumerate(pulls):
            if n == 0:
                return self.arms[i]
        if self.algorithm == "ucb1":
            return self.arms[self._ucb_index(state)]
        if explore and self._epsilon > 0:
            key = self._ctx_key(context)
            draw = stable_hash(f"bandit.explore{_SEP}{self.seed}{_SEP}{key}{_SEP}{tick}")
            # draw / 2^64 < epsilon, cross-multiplied into exact integers.
            if draw * self._epsilon.denominator < self._epsilon.numerator * _HASH_SPACE:
                pick = stable_hash(f"bandit.arm{_SEP}{self.seed}{_SEP}{key}{_SEP}{tick}")
                return self.arms[pick % len(self.arms)]
        return self.arms[self._exploit_index(state)]

    def _exploit_index(self, state: _ContextState) -> int:
        """Argmax over exact mean rewards, lowest arm index on ties."""
        best = 0
        best_mean = state.rewards[0] / state.pulls[0]
        for i in range(1, len(self.arms)):
            mean = state.rewards[i] / state.pulls[i]
            if mean > best_mean:
                best, best_mean = i, mean
        return best

    def _ucb_index(self, state: _ContextState) -> int:
        """UCB1 argmax.  The bonus term needs ``sqrt``/``log`` so the
        index is a float, but floats are pure functions of their inputs;
        ties still break on the lowest arm index."""
        log_t = math.log(state.total_pulls)
        best = 0
        best_index = -math.inf
        for i in range(len(self.arms)):
            index = float(state.rewards[i] / state.pulls[i]) + self.ucb_c * math.sqrt(
                log_t / state.pulls[i]
            )
            if index > best_index:
                best, best_index = i, index
        return best

    def best_arm(self, context: tuple[str, str]) -> str:
        """The pure-exploitation choice (unseen contexts: the first arm)."""
        state = self._contexts.get(context)
        if state is None or any(n == 0 for n in state.pulls):
            # Not every arm has data yet; fall back to the initialisation
            # order so the answer is still deterministic.
            if state is not None:
                for i, n in enumerate(state.pulls):
                    if n == 0:
                        return self.arms[i]
            return self.arms[0]
        return self.arms[self._exploit_index(state)]

    # ------------------------------------------------------------------ #
    # learning
    # ------------------------------------------------------------------ #

    def observe(self, context: tuple[str, str], arm: str, reward: float) -> None:
        """Record one reward for one pulled arm in one context."""
        if arm not in self.arms:
            raise ConfigError(f"unknown arm {arm!r}; expected one of {self.arms}")
        index = self.arms.index(arm)
        state = self._state(context)
        state.pulls[index] += 1
        state.rewards[index] += Fraction(float(reward))

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def contexts(self) -> list[tuple[str, str]]:
        return sorted(self._contexts)

    def pulls(self, context: tuple[str, str]) -> dict[str, int]:
        state = self._contexts.get(context)
        if state is None:
            return {arm: 0 for arm in self.arms}
        return dict(zip(self.arms, state.pulls))

    def mean_reward(self, context: tuple[str, str], arm: str) -> float:
        state = self._contexts.get(context)
        index = self.arms.index(arm)
        if state is None or state.pulls[index] == 0:
            return 0.0
        return float(state.rewards[index] / state.pulls[index])

    @property
    def total_pulls(self) -> int:
        return sum(state.total_pulls for state in self._contexts.values())

    # ------------------------------------------------------------------ #
    # serialization (bit-identical resume)
    # ------------------------------------------------------------------ #

    def as_dict(self) -> dict:
        """JSON-safe dict: ``ContextualBandit.from_dict(b.as_dict())``
        selects and learns bit-identically to ``b`` from here on."""
        return {
            "arms": list(self.arms),
            "algorithm": self.algorithm,
            "epsilon": [self._epsilon.numerator, self._epsilon.denominator],
            "ucb_c": self.ucb_c,
            "seed": self.seed,
            "contexts": {
                self._ctx_key(context): {
                    "pulls": list(state.pulls),
                    "rewards": [
                        [r.numerator, r.denominator] for r in state.rewards
                    ],
                }
                for context, state in sorted(self._contexts.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ContextualBandit":
        """Inverse of :meth:`as_dict` (lossless — exact fractions)."""
        bandit = cls(
            tuple(data["arms"]),
            algorithm=data["algorithm"],
            ucb_c=float(data["ucb_c"]),
            seed=int(data["seed"]),
        )
        num, den = data["epsilon"]
        bandit._epsilon = Fraction(int(num), int(den))
        if not 0 <= bandit._epsilon <= 1:
            raise ConfigError(f"epsilon must be in [0, 1], got {bandit._epsilon}")
        for key, ctx_data in data["contexts"].items():
            category, _, tenant = key.partition(_SEP)
            state = _ContextState(len(bandit.arms))
            state.pulls = [int(n) for n in ctx_data["pulls"]]
            state.rewards = [
                Fraction(int(num), int(den)) for num, den in ctx_data["rewards"]
            ]
            if len(state.pulls) != len(bandit.arms) or len(state.rewards) != len(
                bandit.arms
            ):
                raise ConfigError(
                    f"context {key!r} state does not match {len(bandit.arms)} arms"
                )
            bandit._contexts[(category, tenant)] = state
        return bandit

    @property
    def epsilon(self) -> float:
        return float(self._epsilon)

    def __repr__(self) -> str:
        return (
            f"ContextualBandit(arms={self.arms!r}, algorithm={self.algorithm!r}, "
            f"contexts={len(self._contexts)}, pulls={self.total_pulls})"
        )


register(ContextualBandit)
