"""Scoring candidates and served responses with the LLM judge.

The policy layer's reward signal is :class:`~repro.judge.LlmJudge`'s
absolute 0–5 grade.  The judge's documented observation noise is kept —
a production judge disagrees with itself, and a bandit that can't handle
that is a toy — but it is *seed-pure*: every score is a pure function of
``(judge config, prompt text, response text)``, so replaying a serve
replays its reward bit for bit.

``absolute_score`` needs the :class:`~repro.world.prompts.SyntheticPrompt`
annotations (the quality oracle reads ground-truth needs), while the
serving stack only carries prompt *text*.  :class:`PromptResolver` bridges
the two: a text → annotated-prompt index over the corpus the deployment
serves.  Prompts outside the corpus score as ``None`` — the bandit simply
doesn't learn from them (it still serves them deterministically).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.judge.judge import LlmJudge
from repro.world.prompts import SyntheticPrompt

__all__ = ["PromptResolver", "PolicyScorer"]

#: Context category for prompts the resolver cannot annotate.
UNKNOWN_CATEGORY = "unknown"


class PromptResolver:
    """Text → annotated prompt, for reward lookup at serve time."""

    def __init__(self, prompts: Iterable[SyntheticPrompt] = ()):
        self._by_text: dict[str, SyntheticPrompt] = {}
        self.extend(prompts)

    def add(self, prompt: SyntheticPrompt) -> None:
        self._by_text[prompt.text] = prompt

    def extend(self, prompts: Iterable[SyntheticPrompt]) -> None:
        for prompt in prompts:
            self.add(prompt)

    def resolve(self, text: str) -> SyntheticPrompt | None:
        return self._by_text.get(text)

    def category_for(self, text: str) -> str:
        """The bandit-context category (``"unknown"`` off-corpus)."""
        prompt = self._by_text.get(text)
        return prompt.category if prompt is not None else UNKNOWN_CATEGORY

    def __len__(self) -> int:
        return len(self._by_text)

    def __contains__(self, text: str) -> bool:
        return text in self._by_text


class PolicyScorer:
    """Judge-backed scoring for the policy loop.

    Offline (:meth:`score_candidates`): grade k candidate responses for
    one prompt in one batched judge pass.  Online (:meth:`reward`): grade
    one served response, or return ``None`` when the prompt can't be
    resolved to its annotations.
    """

    def __init__(self, judge: LlmJudge, resolver: PromptResolver):
        self.judge = judge
        self.resolver = resolver

    def score(self, prompt: SyntheticPrompt, response_text: str) -> float:
        """One seed-pure absolute grade in [0, 5]."""
        return self.judge.absolute_score(prompt, response_text)

    def score_candidates(
        self, prompt: SyntheticPrompt, responses: Sequence[str]
    ) -> list[float]:
        """Batched grades, bit-identical to the scalar loop."""
        return self.judge.absolute_score_batch(prompt, responses)

    def reward(self, prompt_text: str, response_text: str) -> float | None:
        """The online reward for one served response (``None`` off-corpus)."""
        prompt = self.resolver.resolve(prompt_text)
        if prompt is None:
            return None
        return self.judge.absolute_score(prompt, response_text)
