"""One serialization protocol for every checkpointable object.

The repo-wide convention is per-class ``as_dict()`` / ``from_dict()``
pairs that round-trip losslessly through JSON.  This module names that
convention (:class:`Serializable`) and adds the one thing the bare
convention cannot express: a payload that says *what it is*.

:func:`serialize` wraps ``obj.as_dict()`` with a versioned ``"schema"``
key (``"ClassName/1"``); :func:`deserialize` dispatches on that key
through a registry and hands the rest of the payload to the registered
class's ``from_dict``.  Classes opt in with :func:`register` at
definition time — :class:`~repro.serve.config.ServingConfig`,
:class:`~repro.pipeline.config.PipelineConfig`,
:class:`~repro.serve.types.ServeResponse`,
:class:`~repro.obs.trace.Trace`, and the
:class:`~repro.policy.bandit.ContextualBandit` state all do, so one
loader can restore a mixed checkpoint stream without guessing shapes.

The envelope is additive: ``as_dict()`` outputs are untouched (pinned
byte-parity exports stay byte-identical), and ``deserialize`` strips the
schema key before calling ``from_dict``, so every registered class keeps
its plain round trip too.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = [
    "SCHEMA_KEY",
    "Serializable",
    "deserialize",
    "register",
    "registered_schemas",
    "schema_id",
    "serialize",
]

#: The envelope's discriminator key.  No ``as_dict()`` payload may use it.
SCHEMA_KEY = "schema"

_REGISTRY: dict[str, type] = {}
_IDS: dict[type, str] = {}


@runtime_checkable
class Serializable(Protocol):
    """The repo-wide serialization contract.

    ``as_dict()`` returns a JSON-safe dict and ``from_dict(data)`` is its
    lossless inverse: ``type(obj).from_dict(obj.as_dict())`` must equal
    ``obj`` (or, for classes without ``__eq__``, re-export identically).
    """

    def as_dict(self) -> dict: ...

    @classmethod
    def from_dict(cls, data: dict) -> Any: ...


def register(cls: type, *, version: int = 1) -> type:
    """Register ``cls`` under ``"{cls.__name__}/{version}"``.

    Callable at class-definition sites (``register(MyClass)`` after the
    class body); returns the class so it also works as a decorator.
    Registering a name twice is a programming error unless it is the
    same class re-imported (idempotent for module reloads).
    """
    if not callable(getattr(cls, "as_dict", None)) or not callable(
        getattr(cls, "from_dict", None)
    ):
        raise TypeError(
            f"{cls.__name__} is not Serializable: it needs as_dict() and "
            "from_dict() to register"
        )
    key = f"{cls.__name__}/{int(version)}"
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not cls:
        if existing.__qualname__ != cls.__qualname__ or existing.__module__ != cls.__module__:
            raise ValueError(f"schema {key!r} is already registered to {existing!r}")
    _REGISTRY[key] = cls
    _IDS[cls] = key
    return cls


def schema_id(cls: type) -> str:
    """The registered schema id of ``cls`` (raises for unregistered)."""
    try:
        return _IDS[cls]
    except KeyError:
        raise KeyError(f"{cls.__name__} is not a registered Serializable") from None


def registered_schemas() -> dict[str, type]:
    """A copy of the registry: ``{"ClassName/version": class}``."""
    return dict(_REGISTRY)


def serialize(obj: Serializable) -> dict:
    """``obj.as_dict()`` wrapped with the versioned ``"schema"`` key."""
    key = schema_id(type(obj))
    data = obj.as_dict()
    if not isinstance(data, dict):
        raise TypeError(
            f"{type(obj).__name__}.as_dict() must return a dict to serialize, "
            f"got {type(data).__name__}"
        )
    if SCHEMA_KEY in data:
        raise ValueError(
            f"{type(obj).__name__}.as_dict() already uses the reserved "
            f"{SCHEMA_KEY!r} key"
        )
    return {SCHEMA_KEY: key, **data}


def deserialize(data: dict) -> Any:
    """Inverse of :func:`serialize`: dispatch on ``data["schema"]``."""
    if not isinstance(data, dict) or SCHEMA_KEY not in data:
        raise ValueError(
            f"payload has no {SCHEMA_KEY!r} key; was it produced by serialize()?"
        )
    key = data[SCHEMA_KEY]
    cls = _REGISTRY.get(key)
    if cls is None:
        raise ValueError(
            f"unknown schema {key!r}; registered: {sorted(_REGISTRY)}"
        )
    payload = {k: v for k, v in data.items() if k != SCHEMA_KEY}
    return cls.from_dict(payload)
