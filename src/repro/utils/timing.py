"""A small wall-clock timing harness for the throughput benchmarks.

The experiment layer reproduces paper *shapes*; this module measures raw
speed — items/sec for the batched hot paths versus their scalar loops —
so `benchmarks/test_bench_throughput.py` can write a perf trajectory
(``BENCH_serving.json``) that later PRs regress against.

Best-of-N wall time is reported alongside the mean: the minimum is the
standard low-noise estimator for CPU-bound microbenchmarks (everything
above it is scheduler jitter), while the mean shows how noisy the run was.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["StageTimer", "TimingResult", "time_call", "time_pair", "speedup"]


class StageTimer:
    """Nested wall-clock sections with correct parent/child attribution.

    The old per-stage accounting (`_StageClock.lap` in the gateway) was
    flat: whatever elapsed since the previous lap was charged to one
    bucket, so a parent stage that wrapped a child stage either lost the
    child's time or double-counted it, depending on where the laps
    landed.  ``StageTimer`` keeps a stack of open sections instead and
    exposes **both** readings:

    * ``inclusive_s[name]`` — total time between a section's enter and
      exit, children included (what a caller of that stage experiences);
    * ``exclusive_s[name]`` — inclusive time minus the time spent in
      directly nested sections (what the stage itself cost).

    Sections may nest arbitrarily deep and re-enter the same name
    (recursion): exclusive time always sums to the outermost section's
    inclusive time, while a recursive name's *inclusive* total counts
    every entry and can exceed wall time — the standard profiler caveat.

    ``clock`` is injectable for deterministic tests; it must be a
    zero-argument callable returning seconds as a float.
    """

    __slots__ = ("_clock", "_stack", "inclusive_s", "exclusive_s", "calls")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stack: list[list] = []  # [name, start, child_seconds]
        self.inclusive_s: dict[str, float] = {}
        self.exclusive_s: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    @property
    def depth(self) -> int:
        """How many sections are currently open."""
        return len(self._stack)

    def push(self, name: str) -> None:
        """Open a section (prefer :meth:`section` unless driving manually)."""
        self._stack.append([name, self._clock(), 0.0])

    def pop(self) -> float:
        """Close the innermost section; returns its inclusive seconds."""
        if not self._stack:
            raise RuntimeError("StageTimer.pop() with no open section")
        name, start, child_s = self._stack.pop()
        elapsed = self._clock() - start
        self.inclusive_s[name] = self.inclusive_s.get(name, 0.0) + elapsed
        self.exclusive_s[name] = self.exclusive_s.get(name, 0.0) + elapsed - child_s
        self.calls[name] = self.calls.get(name, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed
        return elapsed

    @contextmanager
    def section(self, name: str) -> Iterator["StageTimer"]:
        """Time a ``with`` block as one section; exceptions still record."""
        self.push(name)
        try:
            yield self
        finally:
            self.pop()

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """Per-section summary with a stable (sorted) key order."""
        return {
            name: {
                "calls": self.calls[name],
                "inclusive_s": self.inclusive_s[name],
                "exclusive_s": self.exclusive_s[name],
            }
            for name in sorted(self.inclusive_s)
        }


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock measurements of one benchmarked callable."""

    label: str
    n_items: int
    repeats: int
    best_s: float
    mean_s: float

    @property
    def items_per_s(self) -> float:
        """Throughput at the best observed wall time."""
        if self.best_s <= 0.0:
            return float("inf")
        return self.n_items / self.best_s

    @property
    def s_per_item(self) -> float:
        return self.best_s / self.n_items if self.n_items else 0.0

    def to_dict(self) -> dict[str, float | int | str]:
        """JSON-ready summary (used by BENCH_serving.json)."""
        return {
            "label": self.label,
            "n_items": self.n_items,
            "repeats": self.repeats,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "items_per_s": self.items_per_s,
        }


def time_call(
    fn: Callable[[], object],
    *,
    label: str = "",
    n_items: int = 1,
    repeats: int = 3,
    warmup: int = 1,
) -> TimingResult:
    """Time ``fn()`` over ``repeats`` runs after ``warmup`` discarded runs.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is discarded.
    label:
        Name recorded in the result (shows up in the bench JSON).
    n_items:
        How many logical items one call processes; sets ``items_per_s``.
    repeats / warmup:
        Measured runs and discarded cache-warming runs.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return TimingResult(
        label=label,
        n_items=n_items,
        repeats=repeats,
        best_s=min(times),
        mean_s=sum(times) / len(times),
    )


def time_pair(
    baseline: Callable[[], object],
    contender: Callable[[], object],
    *,
    labels: tuple[str, str] = ("baseline", "contender"),
    n_items: int = 1,
    repeats: int = 3,
    warmup: int = 1,
) -> tuple[TimingResult, TimingResult]:
    """Time two callables in interleaved rounds: baseline, contender, repeat.

    :func:`time_call` measures each side in one contiguous block, so any
    systematic drift between the blocks — CPU frequency scaling, another
    process waking up, allocator state left by an earlier benchmark —
    lands entirely on one side and biases the ratio.  That bias is
    invisible for 3x speedups but decides the sign of a 1.1x one.
    Alternating the two callables every round spreads drift evenly across
    both sides; best-of-``repeats`` then discards the jittery rounds.

    Returns ``(baseline_result, contender_result)``; feed them to
    :func:`speedup` in the same order.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        baseline()
        contender()
    base_times: list[float] = []
    cont_times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        baseline()
        base_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        contender()
        cont_times.append(time.perf_counter() - start)
    return (
        TimingResult(
            label=labels[0],
            n_items=n_items,
            repeats=repeats,
            best_s=min(base_times),
            mean_s=sum(base_times) / len(base_times),
        ),
        TimingResult(
            label=labels[1],
            n_items=n_items,
            repeats=repeats,
            best_s=min(cont_times),
            mean_s=sum(cont_times) / len(cont_times),
        ),
    )


def speedup(scalar: TimingResult, batched: TimingResult) -> float:
    """How many times faster the batched run is (per item, best times)."""
    if batched.best_s <= 0.0:
        return float("inf")
    scalar_per_item = scalar.best_s / scalar.n_items if scalar.n_items else scalar.best_s
    batched_per_item = batched.best_s / batched.n_items if batched.n_items else batched.best_s
    return scalar_per_item / batched_per_item
