"""A small wall-clock timing harness for the throughput benchmarks.

The experiment layer reproduces paper *shapes*; this module measures raw
speed — items/sec for the batched hot paths versus their scalar loops —
so `benchmarks/test_bench_throughput.py` can write a perf trajectory
(``BENCH_serving.json``) that later PRs regress against.

Best-of-N wall time is reported alongside the mean: the minimum is the
standard low-noise estimator for CPU-bound microbenchmarks (everything
above it is scheduler jitter), while the mean shows how noisy the run was.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["TimingResult", "time_call", "time_pair", "speedup"]


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock measurements of one benchmarked callable."""

    label: str
    n_items: int
    repeats: int
    best_s: float
    mean_s: float

    @property
    def items_per_s(self) -> float:
        """Throughput at the best observed wall time."""
        if self.best_s <= 0.0:
            return float("inf")
        return self.n_items / self.best_s

    @property
    def s_per_item(self) -> float:
        return self.best_s / self.n_items if self.n_items else 0.0

    def to_dict(self) -> dict[str, float | int | str]:
        """JSON-ready summary (used by BENCH_serving.json)."""
        return {
            "label": self.label,
            "n_items": self.n_items,
            "repeats": self.repeats,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "items_per_s": self.items_per_s,
        }


def time_call(
    fn: Callable[[], object],
    *,
    label: str = "",
    n_items: int = 1,
    repeats: int = 3,
    warmup: int = 1,
) -> TimingResult:
    """Time ``fn()`` over ``repeats`` runs after ``warmup`` discarded runs.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is discarded.
    label:
        Name recorded in the result (shows up in the bench JSON).
    n_items:
        How many logical items one call processes; sets ``items_per_s``.
    repeats / warmup:
        Measured runs and discarded cache-warming runs.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return TimingResult(
        label=label,
        n_items=n_items,
        repeats=repeats,
        best_s=min(times),
        mean_s=sum(times) / len(times),
    )


def time_pair(
    baseline: Callable[[], object],
    contender: Callable[[], object],
    *,
    labels: tuple[str, str] = ("baseline", "contender"),
    n_items: int = 1,
    repeats: int = 3,
    warmup: int = 1,
) -> tuple[TimingResult, TimingResult]:
    """Time two callables in interleaved rounds: baseline, contender, repeat.

    :func:`time_call` measures each side in one contiguous block, so any
    systematic drift between the blocks — CPU frequency scaling, another
    process waking up, allocator state left by an earlier benchmark —
    lands entirely on one side and biases the ratio.  That bias is
    invisible for 3x speedups but decides the sign of a 1.1x one.
    Alternating the two callables every round spreads drift evenly across
    both sides; best-of-``repeats`` then discards the jittery rounds.

    Returns ``(baseline_result, contender_result)``; feed them to
    :func:`speedup` in the same order.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        baseline()
        contender()
    base_times: list[float] = []
    cont_times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        baseline()
        base_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        contender()
        cont_times.append(time.perf_counter() - start)
    return (
        TimingResult(
            label=labels[0],
            n_items=n_items,
            repeats=repeats,
            best_s=min(base_times),
            mean_s=sum(base_times) / len(base_times),
        ),
        TimingResult(
            label=labels[1],
            n_items=n_items,
            repeats=repeats,
            best_s=min(cont_times),
            mean_s=sum(cont_times) / len(cont_times),
        ),
    )


def speedup(scalar: TimingResult, batched: TimingResult) -> float:
    """How many times faster the batched run is (per item, best times)."""
    if batched.best_s <= 0.0:
        return float("inf")
    scalar_per_item = scalar.best_s / scalar.n_items if scalar.n_items else scalar.best_s
    batched_per_item = batched.best_s / batched.n_items if batched.n_items else batched.best_s
    return scalar_per_item / batched_per_item
