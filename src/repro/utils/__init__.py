"""Shared utilities: deterministic RNG, text processing, IO, statistics."""

from repro.utils.rng import RngFactory, derive_rng, stable_hash
from repro.utils.unionfind import UnionFind

__all__ = ["RngFactory", "derive_rng", "stable_hash", "UnionFind"]
