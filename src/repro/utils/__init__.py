"""Shared utilities: deterministic RNG, text processing, IO, statistics."""

from repro.utils.rng import RngFactory, derive_rng, stable_hash
from repro.utils.timing import TimingResult, speedup, time_call
from repro.utils.unionfind import UnionFind

__all__ = [
    "RngFactory",
    "derive_rng",
    "stable_hash",
    "TimingResult",
    "speedup",
    "time_call",
    "UnionFind",
]
