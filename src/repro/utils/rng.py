"""Deterministic random-number management.

All stochastic components in the library draw from ``numpy.random.Generator``
instances produced here.  Two properties matter:

* **Reproducibility** — the same ``(seed, name)`` pair always yields the same
  stream, independent of import order or how many other components exist.
* **Independence** — streams for different names are statistically
  independent, so adding a new component never perturbs existing ones.

Both are achieved by hashing the component name into an offset that is mixed
into a :class:`numpy.random.SeedSequence` spawn key.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stable_hash", "derive_rng", "RngFactory"]


def stable_hash(text: str, bits: int = 64) -> int:
    """Return a platform-stable unsigned hash of ``text``.

    Python's builtin ``hash`` is salted per process; this uses blake2b so the
    value is identical across runs and machines.

    >>> stable_hash("a") == stable_hash("a")
    True
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % (1 << bits)


def derive_rng(seed: int, name: str) -> np.random.Generator:
    """Create an independent generator for component ``name`` under ``seed``."""
    entropy = (int(seed) & 0xFFFFFFFFFFFFFFFF, stable_hash(name))
    return np.random.default_rng(np.random.SeedSequence(entropy))


class RngFactory:
    """Factory handing out named, independent random streams.

    The factory is cheap to pass around; components request their stream by
    name.  Repeated requests for the same name return *fresh* generators with
    identical state, so callers must hold on to the generator if they want a
    continuing stream.

    >>> f = RngFactory(seed=7)
    >>> a = f.get("x").integers(0, 100, 3)
    >>> b = RngFactory(seed=7).get("x").integers(0, 100, 3)
    >>> bool((a == b).all())
    True
    """

    def __init__(self, seed: int):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named component."""
        return derive_rng(self._seed, name)

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, e.g. one per pipeline stage."""
        return RngFactory(self._seed ^ stable_hash(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed})"
