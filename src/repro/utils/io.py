"""JSONL persistence helpers for datasets and experiment results."""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any

__all__ = ["dump_jsonl", "load_jsonl", "to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / sets / numpy scalars to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(v) for v in obj)
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        return obj.item()
    return obj


def dump_jsonl(records: Iterable[Any], path: str | Path) -> int:
    """Write records to ``path`` as JSON lines; returns the record count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(to_jsonable(record), ensure_ascii=False))
            fh.write("\n")
            count += 1
    return count


def load_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield each JSON object from a JSONL file, skipping blank lines."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
