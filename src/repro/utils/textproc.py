"""Low-level text processing helpers shared across the library.

These are intentionally simple, deterministic string operations — the heavy
lifting (tokenisation, n-gram language modelling) lives in
:mod:`repro.text`.
"""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Iterable, Iterator

__all__ = [
    "normalize",
    "words",
    "words_normalized",
    "wordstream",
    "char_ngrams",
    "word_ngrams",
    "sentences",
    "truncate_words",
    "jaccard",
]

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_SENT_SPLIT_RE = re.compile(r"(?<=[.!?])\s+")
_WS_RE = re.compile(r"\s+")


def normalize(text: str) -> str:
    """Lowercase, strip accents, and collapse whitespace.

    >>> normalize("  Héllo   World! ")
    'hello world!'
    """
    decomposed = unicodedata.normalize("NFKD", text)
    ascii_only = decomposed.encode("ascii", "ignore").decode("ascii")
    return _WS_RE.sub(" ", ascii_only).strip().lower()


def words(text: str) -> list[str]:
    """Split normalised text into lowercase word tokens.

    >>> words("Don't panic, 42!")
    ["don't", 'panic', '42']
    """
    return words_normalized(normalize(text))


def words_normalized(normalized_text: str) -> list[str]:
    """Tokenise text that has already been through :func:`normalize`.

    Lets batch callers normalise once and reuse the result across the
    char-gram and word-gram passes; ``words(t)`` is exactly
    ``words_normalized(normalize(t))``.

    >>> words_normalized("don't panic, 42!")
    ["don't", 'panic', '42']
    """
    return _WORD_RE.findall(normalized_text)


def wordstream(text: str) -> str:
    """Word tokens re-joined with single spaces — the canonical form for
    phrase matching (immune to punctuation and hyphenation differences).

    >>> wordstream("Re-read the question!")
    're read the question'
    """
    return " ".join(words(text))


def char_ngrams(text: str, n: int) -> Iterator[str]:
    """Yield character n-grams of the normalised text (padded with spaces)."""
    padded = f" {normalize(text)} "
    for i in range(max(0, len(padded) - n + 1)):
        yield padded[i : i + n]


def word_ngrams(tokens: Iterable[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield word n-grams from a token sequence."""
    toks = list(tokens)
    for i in range(max(0, len(toks) - n + 1)):
        yield tuple(toks[i : i + n])


def sentences(text: str) -> list[str]:
    """Split text into sentences on ``.!?`` boundaries; never returns empties."""
    parts = _SENT_SPLIT_RE.split(text.strip())
    return [p.strip() for p in parts if p.strip()]


def truncate_words(text: str, limit: int) -> str:
    """Keep at most ``limit`` whitespace-delimited words."""
    if limit <= 0:
        return ""
    pieces = text.split()
    if len(pieces) <= limit:
        return text.strip()
    return " ".join(pieces[:limit])


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections (1.0 when both empty)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    return len(sa & sb) / len(union)
