"""Disjoint-set (union-find) with path compression and union by rank.

Used by the near-duplicate clustering stage to merge HNSW neighbour pairs
into duplicate groups.
"""

from __future__ import annotations

__all__ = ["UnionFind"]


class UnionFind:
    """Classic disjoint-set over the integers ``0..n-1``.

    >>> uf = UnionFind(4)
    >>> uf.union(0, 1); uf.union(2, 3)
    True
    True
    >>> uf.connected(0, 1), uf.connected(1, 2)
    (True, False)
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._count = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def components(self) -> int:
        """Number of disjoint components."""
        return self._count

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``'s component."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> dict[int, list[int]]:
        """Map each root to the sorted list of members of its component."""
        out: dict[int, list[int]] = {}
        for i in range(len(self._parent)):
            out.setdefault(self.find(i), []).append(i)
        return out
