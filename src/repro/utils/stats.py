"""Statistics helpers: means, win rates, bootstrap CIs, length-control fit.

Everything here operates on plain Python sequences or numpy arrays and is
deterministic given an explicit ``rng``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "mean",
    "win_rate",
    "bootstrap_ci",
    "length_controlled_win_rate",
    "logistic",
    "Summary",
    "summarize",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (explicitly documented)."""
    vals = list(values)
    if not vals:
        return 0.0
    return float(np.mean(vals))


def win_rate(outcomes: Sequence[float]) -> float:
    """Win rate in percent from outcomes coded 1.0 win / 0.5 tie / 0.0 loss."""
    if len(outcomes) == 0:
        return 0.0
    return 100.0 * mean(outcomes)


def logistic(x: float) -> float:
    """Numerically stable logistic sigmoid."""
    if x >= 0:
        z = np.exp(-x)
        return float(1.0 / (1.0 + z))
    z = np.exp(x)
    return float(z / (1.0 + z))


def bootstrap_ci(
    values: Sequence[float],
    rng: np.random.Generator,
    n_resamples: int = 1000,
    alpha: float = 0.05,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean.

    Returns ``(lo, hi)``; degenerates to ``(v, v)`` for a single value and
    ``(0, 0)`` for no values.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return (0.0, 0.0)
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    lo, hi = np.quantile(means, [alpha / 2, 1 - alpha / 2])
    return (float(lo), float(hi))


def length_controlled_win_rate(
    outcomes: Sequence[float],
    length_deltas: Sequence[float],
) -> float:
    """Length-controlled win rate in percent, AlpacaEval-2.0-LC style.

    Fits a logistic regression of the pairwise outcome on the (standardised)
    log-length difference between candidate and reference responses, then
    reports the predicted win probability at *zero* length difference.  This
    removes the judge's verbosity bias from the headline number, which is the
    defining feature of the LC variant of AlpacaEval 2.0.

    The regression is a two-parameter Newton fit — tiny, dependency-free,
    and convex, so it converges in a handful of iterations.
    """
    y = np.asarray(list(outcomes), dtype=float)
    d = np.asarray(list(length_deltas), dtype=float)
    if y.size == 0:
        return 0.0
    if y.size != d.size:
        raise ValueError(f"outcomes ({y.size}) and deltas ({d.size}) differ in length")
    scale = float(np.std(d))
    if scale < 1e-12:
        return win_rate(y)
    x = d / scale
    # Newton-Raphson on logistic log-likelihood with features [1, x].
    beta = np.zeros(2)
    design = np.column_stack([np.ones_like(x), x])
    for _ in range(25):
        logits = np.clip(design @ beta, -30.0, 30.0)
        p = 1.0 / (1.0 + np.exp(-logits))
        grad = design.T @ (y - p)
        w = np.clip(p * (1 - p), 1e-6, None)
        hess = design.T @ (design * w[:, None])
        try:
            step = np.linalg.solve(hess, grad)
        except np.linalg.LinAlgError:
            break
        beta += step
        if float(np.abs(step).max()) < 1e-10:
            break
    return 100.0 * logistic(float(beta[0]))


@dataclass(frozen=True)
class Summary:
    """Five-number summary of a metric sample."""

    n: int
    mean: float
    std: float
    min: float
    max: float


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; zeros when the sample is empty."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return Summary(n=0, mean=0.0, std=0.0, min=0.0, max=0.0)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        min=float(arr.min()),
        max=float(arr.max()),
    )
