"""Human-evaluation metrics: GSB and the Table 4 triple.

* **GSB** (grade-score-benchmark, Figure 1b): per prompt, compare the PAS
  arm's panel score against the baseline arm's — Good (PAS better), Same,
  Bad — and report the shares.
* **Table 4 metrics** per scenario: *full-mark proportion* (share of
  responses whose panel consensus reaches the top band, >= 4.2 — i.e. the
  typical rater awarded a 5 and no one dissented hard), *average score*
  (mean consensus), and *availability proportion* (share of responses with
  consensus >= 3, i.e. usable answers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.humaneval.panel import AnnotatorPanel
from repro.world.prompts import SyntheticPrompt

__all__ = ["GsbResult", "ScenarioMetrics", "gsb", "scenario_metrics"]

_AVAILABILITY_THRESHOLD = 3.0
_FULL_MARK_THRESHOLD = 4.2
_GSB_MARGIN = 0.2  # consensus difference below this counts as "Same"


@dataclass(frozen=True)
class GsbResult:
    """Good / Same / Bad shares (percent) for one scenario."""

    scenario: str
    good: float
    same: float
    bad: float
    n: int

    @property
    def win_share(self) -> float:
        """Share of decisive comparisons won (the Figure 1b percentage)."""
        decisive = self.good + self.bad
        if decisive == 0:
            return 50.0
        return 100.0 * self.good / decisive


@dataclass(frozen=True)
class ScenarioMetrics:
    """One arm's Table 4 row fragment for one scenario."""

    scenario: str
    full_mark_pct: float
    average_score: float
    availability_pct: float
    n: int


def gsb(
    panel: AnnotatorPanel,
    prompts: list[SyntheticPrompt],
    responses_a: list[str],
    responses_b: list[str],
    scenario: str = "",
) -> GsbResult:
    """Pairwise Good/Same/Bad between arm A (PAS) and arm B (baseline)."""
    if not (len(prompts) == len(responses_a) == len(responses_b)):
        raise ValueError("prompts and both response lists must align")
    if not prompts:
        return GsbResult(scenario=scenario, good=0.0, same=100.0, bad=0.0, n=0)
    good = same = bad = 0
    for prompt, ra, rb in zip(prompts, responses_a, responses_b):
        delta = panel.consensus(prompt, ra) - panel.consensus(prompt, rb)
        if delta > _GSB_MARGIN:
            good += 1
        elif delta < -_GSB_MARGIN:
            bad += 1
        else:
            same += 1
    n = len(prompts)
    return GsbResult(
        scenario=scenario,
        good=100.0 * good / n,
        same=100.0 * same / n,
        bad=100.0 * bad / n,
        n=n,
    )


def scenario_metrics(
    panel: AnnotatorPanel,
    prompts: list[SyntheticPrompt],
    responses: list[str],
    scenario: str = "",
) -> ScenarioMetrics:
    """Compute the Table 4 metric triple for one arm on one scenario."""
    if len(prompts) != len(responses):
        raise ValueError("prompts and responses must align")
    if not prompts:
        return ScenarioMetrics(scenario, 0.0, 0.0, 0.0, 0)
    consensus = [panel.consensus(p, r) for p, r in zip(prompts, responses)]
    n = len(prompts)
    return ScenarioMetrics(
        scenario=scenario,
        full_mark_pct=100.0
        * sum(1 for c in consensus if c >= _FULL_MARK_THRESHOLD)
        / n,
        average_score=sum(consensus) / n,
        availability_pct=100.0
        * sum(1 for c in consensus if c >= _AVAILABILITY_THRESHOLD)
        / n,
        n=n,
    )
