"""A panel of simulated human annotators.

Each annotator perceives the oracle's true quality through a personal bias
(some graders are harsh, some lenient) and per-judgement noise, then rounds
to the 1–5 scale used by the paper's human study.  Scores are deterministic
per (annotator, prompt, response).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import stable_hash
from repro.world.prompts import SyntheticPrompt
from repro.world.quality import assess_response

__all__ = ["Annotator", "AnnotatorPanel"]


@dataclass(frozen=True)
class Annotator:
    """One simulated human rater."""

    annotator_id: int
    bias: float
    noise_sigma: float = 0.45

    def score(self, prompt: SyntheticPrompt, response: str) -> int:
        """Rate a response 1–5."""
        true_quality = assess_response(prompt, response).score
        key = stable_hash(f"annotator␞{self.annotator_id}␞{prompt.uid}␞{response}")
        noise = float(np.random.default_rng(key).normal(0.0, self.noise_sigma))
        raw = true_quality + self.bias + noise
        return int(min(max(round(raw), 1), 5))


class AnnotatorPanel:
    """A fixed panel whose consensus score rates each response.

    Parameters
    ----------
    n_annotators:
        Panel size (odd sizes avoid mean ties at the 0.5 boundary).
    bias_sigma:
        Spread of per-annotator leniency.
    seed:
        Panel identity; the same seed is the same set of people.
    """

    def __init__(self, n_annotators: int = 5, bias_sigma: float = 0.35, seed: int = 0):
        if n_annotators < 1:
            raise ValueError(f"n_annotators must be >= 1, got {n_annotators}")
        rng = np.random.default_rng(stable_hash(f"panel␞{seed}"))
        self.annotators = [
            Annotator(annotator_id=i, bias=float(rng.normal(0.0, bias_sigma)))
            for i in range(n_annotators)
        ]

    def __len__(self) -> int:
        return len(self.annotators)

    def scores(self, prompt: SyntheticPrompt, response: str) -> list[int]:
        """All individual 1–5 ratings."""
        return [a.score(prompt, response) for a in self.annotators]

    def consensus(self, prompt: SyntheticPrompt, response: str) -> float:
        """Panel mean rating."""
        ratings = self.scores(prompt, response)
        return float(np.mean(ratings))

    def majority_full_mark(self, prompt: SyntheticPrompt, response: str) -> bool:
        """True when a strict majority of the panel awards a 5."""
        ratings = self.scores(prompt, response)
        return sum(1 for r in ratings if r == 5) * 2 > len(ratings)
