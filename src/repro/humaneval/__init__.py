"""Simulated human evaluation (paper §4.5, Table 4, Figure 1b)."""

from repro.humaneval.metrics import GsbResult, ScenarioMetrics, gsb, scenario_metrics
from repro.humaneval.panel import Annotator, AnnotatorPanel

__all__ = [
    "Annotator",
    "AnnotatorPanel",
    "GsbResult",
    "ScenarioMetrics",
    "gsb",
    "scenario_metrics",
]
