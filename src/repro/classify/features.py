"""Hashed bag-of-n-grams feature extraction for classification."""

from __future__ import annotations

import numpy as np

from repro.utils import textproc
from repro.utils.rng import stable_hash

__all__ = ["FeatureHasher"]


class FeatureHasher:
    """Map text to sparse count features by hashing word uni/bigrams.

    Unlike the embedding model (which is signed, for cosine geometry),
    classification features are plain non-negative counts, which is what a
    multinomial Naive Bayes likelihood expects.
    """

    def __init__(self, n_features: int = 4096):
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.n_features = n_features

    def transform(self, text: str) -> np.ndarray:
        """Dense count vector of hashed uni+bigram features."""
        vec = np.zeros(self.n_features, dtype=np.float64)
        toks = textproc.words(text)
        for tok in toks:
            vec[stable_hash(f"u|{tok}") % self.n_features] += 1.0
        for gram in textproc.word_ngrams(toks, 2):
            vec[stable_hash(f"b|{gram[0]} {gram[1]}") % self.n_features] += 1.0
        return vec

    def transform_batch(self, texts: list[str]) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.n_features), dtype=np.float64)
        return np.vstack([self.transform(t) for t in texts])
