"""Prompt-category classification (paper §3.1, step 3)."""

from repro.classify.model import CategoryClassifier
from repro.classify.naive_bayes import MultinomialNaiveBayes

__all__ = ["CategoryClassifier", "MultinomialNaiveBayes"]
