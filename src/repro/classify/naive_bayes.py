"""Multinomial Naive Bayes on dense count features."""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyDatasetError, NotFittedError

__all__ = ["MultinomialNaiveBayes"]


class MultinomialNaiveBayes:
    """Multinomial NB with Lidstone smoothing.

    Works on any non-negative count matrix; labels are arbitrary hashable
    values and come back as given.
    """

    def __init__(self, alpha: float = 0.5):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self._classes: list = []
        self._log_prior: np.ndarray | None = None
        self._log_likelihood: np.ndarray | None = None

    @property
    def classes(self) -> list:
        return list(self._classes)

    def fit(self, features: np.ndarray, labels: list) -> "MultinomialNaiveBayes":
        matrix = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if matrix.shape[0] == 0:
            raise EmptyDatasetError("cannot fit NB on an empty feature matrix")
        if matrix.shape[0] != len(labels):
            raise ValueError(
                f"features ({matrix.shape[0]}) and labels ({len(labels)}) disagree"
            )
        if (matrix < 0).any():
            raise ValueError("multinomial NB requires non-negative counts")
        self._classes = sorted(set(labels), key=str)
        class_index = {c: i for i, c in enumerate(self._classes)}
        n_classes = len(self._classes)
        n_features = matrix.shape[1]
        counts = np.zeros((n_classes, n_features), dtype=np.float64)
        class_counts = np.zeros(n_classes, dtype=np.float64)
        for row, label in zip(matrix, labels, strict=True):
            idx = class_index[label]
            counts[idx] += row
            class_counts[idx] += 1
        self._log_prior = np.log(class_counts / class_counts.sum())
        smoothed = counts + self.alpha
        self._log_likelihood = np.log(smoothed / smoothed.sum(axis=1, keepdims=True))
        return self

    def log_posterior(self, features: np.ndarray) -> np.ndarray:
        if self._log_prior is None or self._log_likelihood is None:
            raise NotFittedError("MultinomialNaiveBayes used before fit()")
        matrix = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return matrix @ self._log_likelihood.T + self._log_prior

    def predict(self, features: np.ndarray) -> list:
        scores = self.log_posterior(features)
        return [self._classes[i] for i in np.argmax(scores, axis=1)]

    def predict_one(self, feature_vector: np.ndarray):
        return self.predict(np.atleast_2d(feature_vector))[0]
