"""The prompt-category classifier used by the collection pipeline.

In the paper, 60,000 internally labelled examples fine-tune a BaiChuan 13b
model into a category classifier.  Here a labelled synthetic corpus trains a
hashed-feature multinomial Naive Bayes — a genuinely fitted component whose
accuracy is measured by the test suite and whose mistakes propagate into the
dataset's category mix just as a real classifier's would.
"""

from __future__ import annotations

import numpy as np

from repro.classify.features import FeatureHasher
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.errors import EmptyDatasetError
from repro.world.prompts import PromptFactory, SyntheticPrompt

__all__ = ["CategoryClassifier"]


class CategoryClassifier:
    """fit/predict wrapper: text in, category name out."""

    def __init__(self, n_features: int = 4096, alpha: float = 0.5):
        self._hasher = FeatureHasher(n_features=n_features)
        self._nb = MultinomialNaiveBayes(alpha=alpha)
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, texts: list[str], categories: list[str]) -> "CategoryClassifier":
        if not texts:
            raise EmptyDatasetError("classifier requires training texts")
        self._nb.fit(self._hasher.transform_batch(texts), categories)
        self._fitted = True
        return self

    def fit_synthetic(
        self, n_train: int = 1500, seed: int = 1234
    ) -> "CategoryClassifier":
        """Train on a freshly generated labelled corpus.

        This mirrors the paper's use of internal labelled data: the labels
        come from the corpus generator's ground truth, not from the
        pipeline under evaluation.
        """
        factory = PromptFactory(rng=np.random.default_rng(seed))
        prompts = [factory.make_prompt() for _ in range(n_train)]
        return self.fit([p.text for p in prompts], [p.category for p in prompts])

    def predict(self, text: str) -> str:
        return str(self._nb.predict_one(self._hasher.transform(text)))

    def predict_batch(self, texts: list[str]) -> list[str]:
        if not texts:
            return []
        return [str(c) for c in self._nb.predict(self._hasher.transform_batch(texts))]

    def accuracy(self, prompts: list[SyntheticPrompt]) -> float:
        """Ground-truth accuracy on annotated synthetic prompts."""
        if not prompts:
            return 0.0
        predicted = self.predict_batch([p.text for p in prompts])
        hits = sum(1 for pred, p in zip(predicted, prompts) if pred == p.category)
        return hits / len(prompts)
