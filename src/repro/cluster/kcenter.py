"""k-center greedy diversity selection.

Referenced by the paper's related work on data selection (Du et al. — score
then k-center-greedy for diversity); the collection pipeline offers it as an
optional diversity stage after quality filtering.
"""

from __future__ import annotations

import numpy as np

__all__ = ["k_center_greedy"]


def k_center_greedy(
    embeddings: np.ndarray,
    k: int,
    first: int | None = None,
) -> list[int]:
    """Select ``k`` indices that greedily maximise pairwise coverage.

    Starting from ``first`` (default: the point closest to the centroid),
    repeatedly add the point farthest (in Euclidean distance) from the
    current selection.  Returns the selected indices in pick order.
    """
    matrix = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    n = matrix.shape[0]
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0 or n == 0:
        return []
    k = min(k, n)

    if first is None:
        centroid = matrix.mean(axis=0)
        first = int(np.argmin(np.linalg.norm(matrix - centroid, axis=1)))
    elif not 0 <= first < n:
        raise ValueError(f"first index {first} out of range [0, {n})")

    selected = [first]
    min_dist = np.linalg.norm(matrix - matrix[first], axis=1)
    while len(selected) < k:
        nxt = int(np.argmax(min_dist))
        selected.append(nxt)
        min_dist = np.minimum(min_dist, np.linalg.norm(matrix - matrix[nxt], axis=1))
    return selected
