"""Lloyd's k-means with k-means++ seeding, from scratch.

Used as the coarse quantizer of the IVF index and available directly for
corpus exploration.  Deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Fitted centroids plus assignments and inertia."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = points.shape[0]
    centroids = [points[int(rng.integers(n))]]
    for _ in range(1, k):
        dists = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = float(dists.sum())
        if total <= 1e-12:
            centroids.append(points[int(rng.integers(n))])
            continue
        probs = dists / total
        centroids.append(points[int(rng.choice(n, p=probs))])
    return np.array(centroids)


def kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 50,
    seed: int = 0,
    tol: float = 1e-6,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups.

    Empty clusters are re-seeded with the point farthest from its centroid,
    so the result always has exactly ``k`` non-degenerate centroids (when
    ``k <= n``).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 0:
        raise ValueError("cannot cluster an empty point set")
    k = min(k, n)
    rng = np.random.default_rng(seed)
    centroids = _plus_plus_init(points, k, rng)

    assignments = np.zeros(n, dtype=np.int64)
    inertia = float("inf")
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        dists = np.stack(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=1
        )
        assignments = np.argmin(dists, axis=1)
        new_inertia = float(dists[np.arange(n), assignments].sum())

        new_centroids = centroids.copy()
        for idx in range(k):
            members = points[assignments == idx]
            if members.shape[0] == 0:
                farthest = int(np.argmax(dists[np.arange(n), assignments]))
                new_centroids[idx] = points[farthest]
            else:
                new_centroids[idx] = members.mean(axis=0)

        converged = abs(inertia - new_inertia) <= tol * max(inertia, 1.0)
        centroids = new_centroids
        inertia = new_inertia
        if converged:
            break

    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        n_iterations=iteration,
    )
