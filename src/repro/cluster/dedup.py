"""Near-duplicate grouping via HNSW neighbour graphs (paper §3.1, step 1).

The paper embeds prompts, clusters them with HNSW, and keeps a small number
of representatives per cluster.  Here: build an HNSW index over the
embeddings, take each element's k nearest neighbours, union every pair whose
cosine similarity exceeds a threshold, and keep up to ``keep_per_group``
representatives (lowest original index first, so results are stable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.hnsw import HnswIndex
from repro.ann.sharded import ShardedHnswIndex
from repro.utils.unionfind import UnionFind

__all__ = ["DedupResult", "deduplicate"]

#: Dedup ANN backends: ``auto`` picks sharded iff ``n_shards > 1``.
_BACKENDS = ("auto", "hnsw", "sharded")


@dataclass(frozen=True)
class DedupResult:
    """Outcome of a deduplication pass.

    Attributes
    ----------
    kept:
        Indices of retained elements, in ascending original order.
    groups:
        Each duplicate group as a sorted list of original indices
        (singletons included).
    representative_of:
        Maps every original index to its group's representative (the group
        member with the lowest original index).
    """

    kept: list[int]
    groups: list[list[int]] = field(repr=False)
    representative_of: dict[int, int] = field(repr=False)

    @property
    def n_duplicates_removed(self) -> int:
        return len(self.representative_of) - len(self.kept)


def _knn_graph_sharded(
    matrix: np.ndarray,
    k_neighbors: int,
    ef_search: int,
    seed: int,
    n_shards: int,
) -> dict[int, list[tuple[int, float]]]:
    """k-NN lists over a :class:`ShardedHnswIndex` (self-match excluded).

    Each element queries the whole sharded index for ``k + 1`` neighbours
    (one batched fan-out per shard), then drops its self-hit — the same
    contract :meth:`HnswIndex.knn_graph` provides, so with ``n_shards=1``
    and an equal seed the graph is bit-identical to the monolithic one.
    """
    index = ShardedHnswIndex(
        dim=matrix.shape[1], n_shards=n_shards, ef_search=ef_search, seed=seed
    )
    index.add_batch(matrix)
    keys, dists = index.search_batch_arrays(matrix, k_neighbors + 1, ef=ef_search)
    graph: dict[int, list[tuple[int, float]]] = {}
    for i in range(matrix.shape[0]):
        row_keys, row_dists = keys[i], dists[i]
        valid = ~((row_keys == -1) & np.isinf(row_dists))
        graph[i] = [
            (other, dist)
            for other, dist in zip(row_keys[valid].tolist(), row_dists[valid].tolist())
            if other != i
        ][:k_neighbors]
    return graph


def deduplicate(
    embeddings: np.ndarray,
    threshold: float = 0.9,
    k_neighbors: int = 8,
    keep_per_group: int = 1,
    ef_search: int = 64,
    seed: int = 0,
    n_shards: int = 1,
    backend: str = "auto",
) -> DedupResult:
    """Group near-duplicate embeddings and pick representatives.

    Parameters
    ----------
    embeddings:
        ``(n, dim)`` matrix of (ideally L2-normalised) vectors.
    threshold:
        Cosine similarity above which two elements count as duplicates.
    k_neighbors:
        Neighbours examined per element when proposing duplicate pairs.
    keep_per_group:
        Representatives retained per duplicate group (paper keeps "a small
        amount of data" per cluster).
    n_shards:
        Shard count for the sharded backend.  With ``backend="auto"`` the
        sharded index is used iff ``n_shards > 1``.
    backend:
        ``"hnsw"`` forces the monolithic index, ``"sharded"`` forces
        :class:`~repro.ann.sharded.ShardedHnswIndex` (valid at any shard
        count — a 1-shard sharded run is bit-identical to monolithic,
        which the dedup tests pin), ``"auto"`` picks by ``n_shards``.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if keep_per_group < 1:
        raise ValueError(f"keep_per_group must be >= 1, got {keep_per_group}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    matrix = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    n = matrix.shape[0]
    if n == 0:
        return DedupResult(kept=[], groups=[], representative_of={})

    use_sharded = backend == "sharded" or (backend == "auto" and n_shards > 1)
    if use_sharded:
        graph = _knn_graph_sharded(matrix, k_neighbors, ef_search, seed, n_shards)
    else:
        index = HnswIndex(dim=matrix.shape[1], ef_search=ef_search, seed=seed)
        index.add_batch(matrix, range(n))
        graph = index.knn_graph(k_neighbors, ef=ef_search)

    uf = UnionFind(n)
    max_distance = 1.0 - threshold  # cosine distance equivalent
    for key, hits in graph.items():
        for other, dist in hits:
            if dist <= max_distance:
                uf.union(key, other)

    groups = sorted(uf.groups().values(), key=lambda g: g[0])
    kept: list[int] = []
    representative_of: dict[int, int] = {}
    for group in groups:
        group.sort()
        kept.extend(group[:keep_per_group])
        for member in group:
            representative_of[member] = group[0]
    kept.sort()
    return DedupResult(kept=kept, groups=groups, representative_of=representative_of)
