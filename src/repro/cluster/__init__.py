"""Clustering and diversity selection over prompt embeddings."""

from repro.cluster.dedup import DedupResult, deduplicate
from repro.cluster.kcenter import k_center_greedy
from repro.cluster.kmeans import KMeansResult, kmeans

__all__ = ["DedupResult", "deduplicate", "k_center_greedy", "KMeansResult", "kmeans"]
