"""The PAS model: ``M_p <- SFT(M; D_generated)`` (paper §3.4).

``PasModel`` is the fine-tuned prompt-complementary model.  Training fits an
:class:`~repro.llm.sft.SftDirectivePredictor` on the generated dataset;
inference maps a user prompt to a complementary prompt *without altering the
original input* — the defining difference from rewrite-style APE (BPO).
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.core.golden import render_complement
from repro.embedding.model import EmbeddingModel
from repro.errors import NotFittedError
from repro.llm.persist import load_predictor, save_predictor
from repro.llm.profiles import CapabilityProfile
from repro.llm.sft import SftConfig, SftDirectivePredictor
from repro.pipeline.dataset import PromptPairDataset
from repro.resilience import FaultPlan, augment_fault

__all__ = ["PasModel", "PAS_PAPER_DATA_SIZE"]

#: Pairs in the paper's released dataset (§3.3) — the Figure 7 anchor.
PAS_PAPER_DATA_SIZE = 9_000


class PasModel:
    """A trained plug-and-play prompt augmenter.

    Parameters
    ----------
    base_model:
        The base LLM being fine-tuned (``qwen2-7b-chat`` in the paper's
        main setup, ``llama-2-7b-instruct`` in the BPO-parity setup).
    embedder:
        Sentence encoder; defaults to the library-wide hashed n-gram model.
    sft_config:
        Fit hyper-parameters (k-NN width, vote threshold).
    seed:
        Training-run salt.
    """

    def __init__(
        self,
        base_model: str | CapabilityProfile = "qwen2-7b-chat",
        embedder: EmbeddingModel | None = None,
        sft_config: SftConfig | None = None,
        seed: int = 0,
    ):
        self.predictor = SftDirectivePredictor(
            base_model=base_model,
            embedder=embedder,
            config=sft_config,
            seed=seed,
        )
        self._trained_on: int = 0

    @property
    def base_model_name(self) -> str:
        return self.predictor.base_profile.name

    @property
    def is_trained(self) -> bool:
        return self.predictor.is_fitted

    @property
    def n_training_pairs(self) -> int:
        return self._trained_on

    def train(self, dataset: PromptPairDataset) -> "PasModel":
        """Fine-tune on a prompt-complementary dataset."""
        pairs = dataset.training_texts()
        self.predictor.fit(pairs)
        self._trained_on = len(pairs)
        return self

    def augment(
        self,
        prompt_text: str,
        embed_cache=None,
        fault_plan: FaultPlan | None = None,
    ) -> str:
        """Produce the complementary prompt ``p_c = M_p(p)``.

        Returns an empty string when the model predicts no directive —
        plugging PAS in never degrades a prompt it has nothing to add to.
        ``embed_cache`` (an :class:`~repro.serve.cache.LruCache`-shaped
        memo of prompt → embedding) skips the hashing pass for prompts
        embedded before; results are bit-identical either way.
        ``fault_plan`` injects deterministic augmentation failures
        (:class:`~repro.errors.AugmentationError`, raised before any
        embedding work) so serving layers can rehearse their degradation
        path; the check is a pure function of the prompt text.
        """
        if not self.is_trained:
            raise NotFittedError("PasModel must be trained before augment()")
        if fault_plan is not None and fault_plan.augment_fails(prompt_text):
            raise augment_fault(prompt_text)
        aspects = self.predictor.predict_aspects(prompt_text, embed_cache=embed_cache)
        return self._render(prompt_text, aspects)

    def augment_batch(
        self,
        prompts: Sequence[str],
        embed_cache=None,
        fault_plan: FaultPlan | None = None,
    ) -> list[str]:
        """Complementary prompts for a whole batch in one forward pass.

        Identical prompts are deduplicated (augmentation is a pure
        function of the prompt), the unique ones go through one
        :meth:`SftDirectivePredictor.predict_aspects_batch` call, and the
        results map back per request.  Bit-identical to
        ``[self.augment(p) for p in prompts]``; an empty batch is a no-op.
        ``embed_cache`` is forwarded to the predictor (one lookup per
        unique prompt).  ``fault_plan`` raises
        :class:`~repro.errors.AugmentationError` for the first failing
        prompt, exactly as the scalar loop would; callers that want
        per-prompt degradation should pre-filter with
        :meth:`FaultPlan.augment_fails <repro.resilience.FaultPlan.augment_fails>`
        (the gateway's batch planner does).
        """
        if not self.is_trained:
            raise NotFittedError("PasModel must be trained before augment_batch()")
        prompts = list(prompts)
        if not prompts:
            return []
        unique: list[str] = []
        seen: set[str] = set()
        for prompt_text in prompts:
            if prompt_text not in seen:
                seen.add(prompt_text)
                unique.append(prompt_text)
        if fault_plan is not None:
            for prompt_text in prompts:
                if fault_plan.augment_fails(prompt_text):
                    raise augment_fault(prompt_text)
        aspect_sets = self.predictor.predict_aspects_batch(
            unique, embed_cache=embed_cache
        )
        complements = {
            text: self._render(text, aspects)
            for text, aspects in zip(unique, aspect_sets)
        }
        return [complements[prompt_text] for prompt_text in prompts]

    def embed_prompts(self, prompts: Sequence[str]):
        """Embeddings for ``prompts`` as an ``(n, dim)`` matrix.

        Exposes the predictor's encoder so serving-layer caches can hold
        the exact vectors augmentation would compute (``embed_batch``
        rows are bit-identical to per-text ``embed`` calls).
        """
        return self.predictor.embedder.embed_batch(prompts)

    def augment_with_embeddings(
        self, prompts: Sequence[str], embeddings, fault_plan: FaultPlan | None = None
    ) -> list[str]:
        """Complements for prompts whose embeddings are already in hand.

        ``embeddings[i]`` must be the encoder's vector for
        ``prompts[i]`` (from :meth:`embed_prompts` or an embedding
        cache); each complement is then bit-identical to
        ``self.augment(prompts[i])`` without re-embedding anything.
        ``fault_plan`` behaves as in :meth:`augment_batch` (raises for the
        first failing prompt).
        """
        if not self.is_trained:
            raise NotFittedError(
                "PasModel must be trained before augment_with_embeddings()"
            )
        if fault_plan is not None:
            for prompt_text in prompts:
                if fault_plan.augment_fails(prompt_text):
                    raise augment_fault(prompt_text)
        return [
            self._render(
                text, self.predictor.predict_aspects_from_embedding(text, vector)
            )
            for text, vector in zip(prompts, embeddings)
        ]

    def _render(self, prompt_text: str, aspects: set[str]) -> str:
        if not aspects:
            return ""
        return render_complement(aspects, salt=f"pas␞{self.base_model_name}␞{prompt_text}")

    def enhance(self, prompt_text: str) -> str:
        """The concatenated prompt ``cat(p, p_c)`` fed to the target LLM."""
        complement = self.augment(prompt_text)
        if not complement:
            return prompt_text
        return f"{prompt_text}\n{complement}"

    def enhance_batch(self, prompts: Sequence[str]) -> list[str]:
        """Batched :meth:`enhance`: concatenated prompts for the target LLM."""
        return [
            prompt_text if not complement else f"{prompt_text}\n{complement}"
            for prompt_text, complement in zip(prompts, self.augment_batch(prompts))
        ]

    def save(self, path: str | Path) -> Path:
        """Persist the trained model to one ``.npz`` file (train once,
        serve many times)."""
        if not self.is_trained:
            raise NotFittedError("cannot save an untrained PasModel")
        return save_predictor(self.predictor, path)

    @classmethod
    def load(cls, path: str | Path) -> "PasModel":
        """Reconstruct a model saved with :meth:`save`."""
        model = cls.__new__(cls)
        model.predictor = load_predictor(path)
        model._trained_on = model.predictor.n_examples
        return model
