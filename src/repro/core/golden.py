"""Golden few-shot exemplars (paper §3.2, ``D_golden``).

The paper seeds generation with 4–5 curated (prompt, complementary prompt)
pairs per category from BaiChuan.  Here golden pairs are manufactured from
ground truth: a clean prompt (every need cued) paired with directives that
address exactly its needs.  These are the only "hand-labelled" items in the
whole pipeline, matching the paper's tiny golden footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import stable_hash
from repro.world.aspects import ASPECTS, render_directive
from repro.world.categories import category_names
from repro.world.prompts import PromptFactory, SyntheticPrompt

__all__ = ["GoldenPair", "GoldenData", "build_golden_data", "render_complement"]

#: Figure 4 limits complements to ~30 words; three directives fit.
MAX_DIRECTIVES = 3


@dataclass(frozen=True)
class GoldenPair:
    """One exemplar: a prompt and its ideal complementary prompt."""

    prompt: SyntheticPrompt
    complement: str


def render_complement(aspects: set[str], salt: str = "") -> str:
    """Render directive sentences for a set of aspects (capped, weighted).

    When more than :data:`MAX_DIRECTIVES` aspects are requested, the
    highest-weight aspects win — the ones whose omission costs the most
    response quality.
    """
    ranked = sorted(aspects, key=lambda a: (-ASPECTS[a].weight, a))[:MAX_DIRECTIVES]
    parts = []
    for aspect in ranked:
        variant = stable_hash(f"{salt}␞{aspect}") % len(ASPECTS[aspect].directive_templates)
        parts.append(render_directive(aspect, variant))
    return " ".join(parts)


class GoldenData:
    """Per-category golden exemplars."""

    def __init__(self, pairs_by_category: dict[str, list[GoldenPair]]):
        if not pairs_by_category:
            raise ValueError("golden data must cover at least one category")
        self._by_category = pairs_by_category

    def categories(self) -> list[str]:
        return sorted(self._by_category)

    def exemplars(self, category: str) -> list[GoldenPair]:
        """Exemplars for a category (empty list for unknown categories)."""
        return list(self._by_category.get(category, []))

    def all_pairs(self) -> list[GoldenPair]:
        return [p for pairs in self._by_category.values() for p in pairs]

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_category.values())


def build_golden_data(seed: int = 99, per_category: int = 5) -> GoldenData:
    """Manufacture golden exemplars for every category.

    Golden prompts are generated with ``cue_rate=1.0`` (every need is
    explicitly cued) and no misleading cues, so their complements can be
    derived exactly.
    """
    if per_category < 1:
        raise ValueError(f"per_category must be >= 1, got {per_category}")
    factory = PromptFactory(rng=np.random.default_rng(seed))
    by_category: dict[str, list[GoldenPair]] = {}
    for category in category_names():
        pairs = []
        for i in range(per_category):
            prompt = factory.make_prompt(
                category=category, cue_rate=1.0, misleading_cue_rate=0.0
            )
            complement = render_complement(set(prompt.needs), salt=f"golden␞{category}␞{i}")
            pairs.append(GoldenPair(prompt=prompt, complement=complement))
        by_category[category] = pairs
    return GoldenData(by_category)
