"""Iterative PAS — a feedback round on top of the plug-and-play loop.

The paper's pipeline complements once.  Its critic machinery (Figure 5)
suggests an obvious extension the conclusion gestures at: *inspect the
response and complement again*.  ``IterativePas`` runs up to ``max_rounds``
of a fully text-level loop:

1. augment the prompt and get a response;
2. a reviewer LLM compares the needs it can read off the prompt with the
   aspects the response actually evidences (marker phrases);
3. if something is visibly missing, add directives for the gap and retry;
4. keep whichever response covered more.

Everything is done through public faculties — cue reading, marker reading,
directive rendering — so the loop composes with any target engine, like
the base system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.golden import render_complement
from repro.core.pas import PasModel
from repro.llm.engine import SimulatedLLM
from repro.world.aspects import find_markers, parse_directives

__all__ = ["IterationTrace", "IterativePas"]


@dataclass(frozen=True)
class IterationTrace:
    """What happened across the rounds of one request."""

    rounds: int
    complements: tuple[str, ...]
    responses: tuple[str, ...]
    final_response: str
    gaps_closed: frozenset[str]


@dataclass
class IterativePas:
    """PAS with response-feedback rounds.

    Parameters
    ----------
    pas:
        The trained one-shot augmenter (round 1 uses it unchanged).
    reviewer:
        The LLM that reads prompts/responses between rounds; the paper's
        critic model is the natural choice.
    max_rounds:
        Total response rounds (1 = plain PAS).
    """

    pas: PasModel
    reviewer: SimulatedLLM = field(default_factory=lambda: SimulatedLLM("teacher-gpt-4"))
    max_rounds: int = 2

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")

    def _gaps(self, prompt_text: str, response_text: str, demanded: set[str]) -> set[str]:
        """Needs the reviewer can see that the response does not evidence."""
        visible_needs = self.reviewer.infer_needs(prompt_text)
        evidenced = find_markers(response_text)
        return (visible_needs | demanded) - evidenced

    def ask(self, target: SimulatedLLM, prompt_text: str) -> IterationTrace:
        """Run the iterative loop against one target engine."""
        complement = self.pas.augment(prompt_text)
        response = target.respond(prompt_text, supplement=complement or None)
        complements = [complement]
        responses = [response]
        demanded = parse_directives(complement)
        closed: set[str] = set()

        for _ in range(self.max_rounds - 1):
            gaps = self._gaps(prompt_text, response, demanded)
            if not gaps:
                break
            demanded = demanded | gaps
            complement = render_complement(demanded, salt=f"iter␞{prompt_text}")
            retry = target.respond(prompt_text, supplement=complement or None)
            complements.append(complement)
            responses.append(retry)
            before = find_markers(response)
            after = find_markers(retry)
            # keep the better-covered response
            if len(after & demanded) >= len(before & demanded):
                closed |= (after - before) & gaps
                response = retry

        return IterationTrace(
            rounds=len(responses),
            complements=tuple(complements),
            responses=tuple(responses),
            final_response=response,
            gaps_closed=frozenset(closed),
        )
