"""The paper's primary contribution: the PAS model and its plug-in wrapper."""

from repro.core.golden import GoldenData, GoldenPair, build_golden_data, render_complement
from repro.core.iterative import IterationTrace, IterativePas
from repro.core.pas import PAS_PAPER_DATA_SIZE, PasModel
from repro.core.plug import PasApe, PasEnhancedLLM

__all__ = [
    "PAS_PAPER_DATA_SIZE",
    "IterationTrace",
    "IterativePas",
    "PasApe",
    "GoldenData",
    "GoldenPair",
    "build_golden_data",
    "render_complement",
    "PasModel",
    "PasEnhancedLLM",
]
