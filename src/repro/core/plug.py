"""Plug-and-play wiring: PAS in front of any target LLM (paper §3.4).

``r_e = LLM(cat(p, p_c))``: the wrapper keeps the user's prompt intact and
passes the complement alongside it, so it composes with *any* engine —
open-weight or API-served — which is the paper's flexibility claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import ApeMethod, FlexibilityProfile
from repro.core.pas import PAS_PAPER_DATA_SIZE, PasModel
from repro.llm.api import ChatClient
from repro.llm.engine import SimulatedLLM

__all__ = ["PasEnhancedLLM", "PasApe"]


@dataclass
class PasEnhancedLLM:
    """A target LLM with PAS plugged in.

    Parameters
    ----------
    pas:
        A trained :class:`~repro.core.pas.PasModel`.
    target:
        The model being enhanced — an engine for direct use or a
        :class:`~repro.llm.api.ChatClient` for API-style use with usage
        accounting.
    """

    pas: PasModel
    target: SimulatedLLM | ChatClient

    def ask(self, prompt_text: str) -> str:
        """Answer the user's prompt with PAS augmentation applied."""
        complement = self.pas.augment(prompt_text)
        supplement = complement or None
        if isinstance(self.target, ChatClient):
            return self.target.ask(prompt_text, supplement=supplement)
        return self.target.respond(prompt_text, supplement=supplement)

    def ask_plain(self, prompt_text: str) -> str:
        """Answer without augmentation (the paper's baseline arm)."""
        if isinstance(self.target, ChatClient):
            return self.target.ask(prompt_text)
        return self.target.respond(prompt_text)


@dataclass
class PasApe(ApeMethod):
    """PAS exposed through the common APE-method interface.

    The evaluation harness treats every method as a prompt transformer;
    PAS's transform keeps the prompt intact and supplies a supplement.
    """

    pas: PasModel
    name: str = "pas"

    def transform(self, prompt_text: str) -> tuple[str, str | None]:
        complement = self.pas.augment(prompt_text)
        return prompt_text, (complement or None)

    @property
    def flexibility(self) -> FlexibilityProfile:
        return FlexibilityProfile(
            method="pas",
            needs_human_labor=False,  # the dataset is generated automatically
            llm_agnostic=True,
            task_agnostic=True,
            training_examples=PAS_PAPER_DATA_SIZE,
        )
