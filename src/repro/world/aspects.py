"""Taxonomy of latent prompt needs ("aspects").

Each aspect bundles three phrase banks:

* ``cue_phrases`` — surface phrases that *signal* the need inside a user
  prompt.  Simulated LLMs detect cues with model-dependent reliability; the
  PAS model learns them from data.
* ``directive_templates`` — sentences a complementary prompt uses to address
  the need (the paper's Figure 4 asks for methodology-level supplements
  within ~30 words; these follow that register).
* ``marker_phrases`` — phrases whose presence in a *response* evidences that
  the aspect was actually addressed.  The quality oracle and the judges scan
  for them.

The separation keeps text as the only interface between components: prompts,
complementary prompts, and responses are all plain strings, and every
consumer recovers structure by parsing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import textproc

__all__ = [
    "Aspect",
    "ASPECTS",
    "aspect_names",
    "find_cues",
    "find_markers",
    "parse_directives",
    "render_directive",
]


@dataclass(frozen=True)
class Aspect:
    """One latent need.

    Attributes
    ----------
    name:
        Stable identifier used across the library.
    cue_phrases:
        Lowercase phrases that signal the need in a user prompt.
    directive_templates:
        Complementary-prompt sentences that address the need.
    marker_phrases:
        Response phrases that evidence the aspect was addressed.
    weight:
        Relative contribution to response quality when the need is met.
    """

    name: str
    cue_phrases: tuple[str, ...]
    directive_templates: tuple[str, ...]
    marker_phrases: tuple[str, ...]
    weight: float = 1.0


_ASPECT_LIST: tuple[Aspect, ...] = (
    Aspect(
        name="step_by_step",
        cue_phrases=(
            "how do i",
            "how can i",
            "walk me through",
            "what are the steps",
            "guide me through",
            "show me how",
        ),
        directive_templates=(
            "Please explain the process step by step, covering each stage in order.",
            "Break the task into ordered steps so the procedure is easy to follow.",
            "Lay out the solution as a numbered sequence of steps.",
        ),
        marker_phrases=("step by step", "step 1", "first step", "numbered sequence"),
        weight=1.0,
    ),
    Aspect(
        name="logic_trap",
        cue_phrases=(
            "riddle",
            "tricky question",
            "if there are",
            "how many are left",
            "brain teaser",
            "think carefully before",
        ),
        directive_templates=(
            "Watch out for hidden assumptions or logic traps before answering.",
            "Check whether the question contains a trap; reason about what actually happens.",
            "Re-read the question carefully; it may be designed to mislead.",
        ),
        marker_phrases=(
            "hidden assumption",
            "careful reading",
            "the trap here",
            "reasoning carefully",
        ),
        weight=1.4,
    ),
    Aspect(
        name="depth",
        cue_phrases=(
            "in detail",
            "comprehensive",
            "explain why",
            "thorough",
            "deep dive",
            "underlying mechanism",
        ),
        directive_templates=(
            "Provide a detailed analysis covering underlying mechanisms and influencing factors.",
            "Go beyond the surface answer and explain the reasoning behind it in depth.",
            "Cover the relevant mechanisms, causes, and trade-offs thoroughly.",
        ),
        marker_phrases=(
            "underlying mechanism",
            "in depth",
            "influencing factors",
            "detailed analysis",
        ),
        weight=1.0,
    ),
    Aspect(
        name="structure",
        cue_phrases=(
            "well organized",
            "outline",
            "organize the answer",
            "structured",
            "easy to follow",
        ),
        directive_templates=(
            "Organize the answer with clear headings and a logical flow.",
            "Structure the response so each section addresses one point.",
            "Present the answer in a well-organized layout that is easy to scan.",
        ),
        marker_phrases=("clear headings", "organized into sections", "logical flow"),
        weight=0.9,
    ),
    Aspect(
        name="examples",
        cue_phrases=(
            "for example",
            "with examples",
            "such as what",
            "sample",
            "show an example",
        ),
        directive_templates=(
            "Include concrete examples to illustrate each point.",
            "Support each claim with a worked example.",
            "Add illustrative examples so the idea is tangible.",
        ),
        marker_phrases=("for example", "as an example", "worked example"),
        weight=0.9,
    ),
    Aspect(
        name="audience",
        cue_phrases=(
            "for beginners",
            "i am new to",
            "explain to a child",
            "non technical",
            "like i am five",
        ),
        directive_templates=(
            "Tailor the explanation to the reader's stated background and avoid jargon.",
            "Pitch the answer at the audience's level of expertise.",
            "Keep the explanation accessible to the stated audience.",
        ),
        marker_phrases=("in plain terms", "without jargon", "for a beginner"),
        weight=1.0,
    ),
    Aspect(
        name="format",
        cue_phrases=(
            "as json",
            "in a table",
            "bullet points",
            "as a list",
            "in markdown",
            "output format",
        ),
        directive_templates=(
            "Follow the requested output format exactly, with no extra prose.",
            "Produce the answer in the exact format the user specified.",
            "Match the required output format precisely.",
        ),
        marker_phrases=("requested format", "formatted output", "exact format"),
        weight=1.1,
    ),
    Aspect(
        name="constraints",
        cue_phrases=(
            "at most",
            "must use",
            "without using",
            "no more than",
            "only using",
            "within the limit",
        ),
        directive_templates=(
            "Respect every stated constraint and do not relax any requirement.",
            "Honor all limits the user imposed; do not add or drop requirements.",
            "Keep every constraint from the question intact in the answer.",
        ),
        marker_phrases=("within the stated limits", "respecting the constraint", "as required"),
        weight=1.2,
    ),
    Aspect(
        name="context",
        cue_phrases=(
            "in ancient times",
            "in the context of",
            "given that",
            "in my situation",
            "historical setting",
        ),
        directive_templates=(
            "Ground the answer in the specific context mentioned, not a generic setting.",
            "Account for the stated situation and its practical limitations.",
            "Keep the answer anchored to the context the user described.",
        ),
        marker_phrases=("in this context", "given the setting", "under these conditions"),
        weight=1.0,
    ),
    Aspect(
        name="edge_cases",
        cue_phrases=(
            "what if",
            "corner cases",
            "edge cases",
            "robust to",
            "when it fails",
        ),
        directive_templates=(
            "Discuss edge cases and failure modes explicitly.",
            "Call out where the approach breaks down and how to handle it.",
            "Cover boundary conditions and unusual inputs.",
        ),
        marker_phrases=("edge case", "failure mode", "boundary condition"),
        weight=1.0,
    ),
    Aspect(
        name="style",
        cue_phrases=(
            "formal tone",
            "casual tone",
            "in the style of",
            "professional wording",
            "friendly voice",
        ),
        directive_templates=(
            "Match the stylistic register the user requested throughout.",
            "Keep the writing style consistent with the requested tone.",
            "Adopt the requested voice and maintain it across the answer.",
        ),
        marker_phrases=("keeping the requested tone", "in the requested style"),
        weight=0.8,
    ),
    Aspect(
        name="brevity",
        cue_phrases=(
            "briefly",
            "one sentence",
            "tl dr",
            "short answer",
            "be concise",
            "quick summary",
        ),
        directive_templates=(
            "Keep the answer concise and avoid padding.",
            "Answer briefly; include only what is essential.",
            "Prefer a short, direct answer over an exhaustive one.",
        ),
        marker_phrases=("in short", "concisely", "the short answer"),
        weight=0.8,
    ),
    Aspect(
        name="comparison",
        cue_phrases=(
            "versus",
            "compare",
            "pros and cons",
            "which is better",
            "trade offs",
        ),
        directive_templates=(
            "Compare the alternatives along explicit criteria before concluding.",
            "Weigh the options against each other on the dimensions that matter.",
            "Lay out pros and cons for each alternative side by side.",
        ),
        marker_phrases=("compared with", "pros and cons", "on balance"),
        weight=1.0,
    ),
    Aspect(
        name="verification",
        cue_phrases=(
            "is it true",
            "fact check",
            "accurate",
            "double check",
            "verify that",
        ),
        directive_templates=(
            "Verify claims carefully and avoid overgeneralized statements.",
            "State only what can be supported; flag uncertainty explicitly.",
            "Double-check each factual claim before presenting it.",
        ),
        marker_phrases=("verified", "to be precise", "with appropriate caution"),
        weight=1.2,
    ),
)

ASPECTS: dict[str, Aspect] = {a.name: a for a in _ASPECT_LIST}


def aspect_names() -> list[str]:
    """All aspect names in registry order."""
    return [a.name for a in _ASPECT_LIST]


def find_cues(text: str) -> dict[str, str]:
    """Map each aspect whose cue phrase appears in ``text`` to that phrase.

    Matching is word-based (punctuation- and hyphenation-insensitive); the
    first matching cue per aspect wins.
    """
    stream = f" {textproc.wordstream(text)} "
    hits: dict[str, str] = {}
    for aspect in _ASPECT_LIST:
        for cue in aspect.cue_phrases:
            if f" {cue} " in stream:
                hits[aspect.name] = cue
                break
    return hits


def find_markers(text: str) -> set[str]:
    """Aspects evidenced by marker phrases in a response text."""
    stream = f" {textproc.wordstream(text)} "
    return {
        aspect.name
        for aspect in _ASPECT_LIST
        if any(f" {marker} " in stream for marker in aspect.marker_phrases)
    }


def parse_directives(text: str | None) -> set[str]:
    """Aspects addressed by directive sentences in a complementary prompt.

    Directive parsing is keyword-based on distinctive fragments of each
    template, so paraphrased directives produced by noisy teachers still
    parse as long as they reuse the canonical phrasing.
    """
    if not text:
        return set()
    stream = f" {textproc.wordstream(text)} "
    found: set[str] = set()
    for aspect in _ASPECT_LIST:
        for template in aspect.directive_templates:
            fragment = _distinctive_fragment(template)
            if f" {fragment} " in stream:
                found.add(aspect.name)
                break
    return found


def _distinctive_fragment(template: str) -> str:
    """A 4-word normalised fragment identifying a directive template."""
    toks = textproc.words(template)
    return " ".join(toks[:4])


def render_directive(aspect_name: str, variant: int = 0) -> str:
    """Render one directive sentence for an aspect (variant wraps around)."""
    aspect = ASPECTS[aspect_name]
    templates = aspect.directive_templates
    return templates[variant % len(templates)]
