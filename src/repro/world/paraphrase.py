"""Surface paraphrasing for near-duplicate generation.

LMSYS/WildChat duplicates are rarely byte-identical — users rephrase.  The
paraphraser perturbs a prompt's surface while preserving its meaning, needs
and cues: greeting prefixes/suffixes, politeness swaps, and a synonym table
over *non-cue* vocabulary (cue phrases are load-bearing and must survive).
The harder the paraphrase, the harder the dedup stage has to work — which
is exactly what the A1 ablation measures.
"""

from __future__ import annotations

import numpy as np

from repro.utils import textproc

__all__ = ["SYNONYMS", "paraphrase"]

# Synonyms restricted to words that never appear inside cue phrases, so a
# paraphrased prompt keeps every cue intact.
SYNONYMS: dict[str, tuple[str, ...]] = {
    "implement": ("build", "create", "code up"),
    "write": ("draft", "produce"),
    "quickly": ("fast", "rapidly"),
    "problem": ("task", "exercise"),
    "function": ("routine", "method"),
    "give": ("provide", "offer"),
    "help": ("assist",),
    "fix": ("repair", "resolve"),
    "ideas": ("suggestions", "options"),
    "discuss": ("talk about", "go over"),
}

_PREFIXES: tuple[str, ...] = (
    "hey, ",
    "hello, ",
    "hi there, ",
    "quick question: ",
    "so, ",
    "",
)
_SUFFIXES: tuple[str, ...] = (
    " thanks!",
    " thanks a lot.",
    " appreciate it.",
    " cheers.",
    "",
)


def paraphrase(
    text: str,
    rng: np.random.Generator,
    synonym_rate: float = 0.6,
    decorate: bool = True,
) -> str:
    """Produce a meaning-preserving surface variant of ``text``.

    Parameters
    ----------
    synonym_rate:
        Probability that each substitutable word is swapped.
    decorate:
        Whether to add a greeting prefix / thanks suffix.
    """
    if not 0.0 <= synonym_rate <= 1.0:
        raise ValueError(f"synonym_rate must be in [0, 1], got {synonym_rate}")
    words = text.split()
    out = []
    for word in words:
        # Preserve punctuation glued to the word.
        core = word.strip(".,;:!?")
        trailing = word[len(core):] if core else word
        key = core.lower()
        if key in SYNONYMS and rng.random() < synonym_rate:
            replacement = str(SYNONYMS[key][int(rng.integers(len(SYNONYMS[key])))])
            if core[:1].isupper():
                replacement = replacement[:1].upper() + replacement[1:]
            out.append(replacement + trailing)
        else:
            out.append(word)
    result = " ".join(out)
    if decorate:
        prefix = str(_PREFIXES[int(rng.integers(len(_PREFIXES)))])
        suffix = str(_SUFFIXES[int(rng.integers(len(_SUFFIXES)))])
        result = prefix + result + suffix
    return result


def surface_distance(a: str, b: str) -> float:
    """1 - Jaccard word overlap; a cheap 'how different does it look'."""
    return 1.0 - textproc.jaccard(textproc.words(a), textproc.words(b))
