"""The 14 prompt categories of Figure 6.

The paper's dataset spans 14 categories with roughly 500 pairs each, with
Q&A and Coding the largest.  Each category carries:

* ``templates`` — prompt surface forms with ``{topic}`` / ``{detail}`` slots;
* ``topics`` — the topic bank filling those slots (topic words also anchor
  the intent-preservation check in the quality oracle);
* ``aspect_prior`` — how likely each latent aspect is to be a *need* of a
  prompt in this category;
* ``share`` — relative share in the synthetic corpus (Q&A and Coding are
  deliberately over-represented, matching Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Category", "CATEGORIES", "category_names"]


@dataclass(frozen=True)
class Category:
    """One prompt category of the synthetic universe."""

    name: str
    templates: tuple[str, ...]
    topics: tuple[str, ...]
    aspect_prior: dict[str, float]
    share: float = 1.0


_CATEGORY_LIST: tuple[Category, ...] = (
    Category(
        name="question_answering",
        templates=(
            "What is {topic} and how does it relate to {detail}?",
            "Can you explain {topic} in the setting of {detail}?",
            "Why does {topic} matter for {detail}?",
            "Does {topic} increase or decrease under {detail}?",
        ),
        topics=(
            "blood pressure regulation",
            "photosynthesis efficiency",
            "compound interest",
            "plate tectonics",
            "network latency",
            "inflation dynamics",
            "immune response",
            "battery degradation",
            "soil erosion",
            "supply chains",
        ),
        aspect_prior={
            "depth": 0.45,
            "verification": 0.3,
            "examples": 0.25,
            "structure": 0.2,
            "audience": 0.15,
            "brevity": 0.1,
        },
        share=1.8,
    ),
    Category(
        name="coding",
        templates=(
            "How do I implement {topic} in {detail}?",
            "Write a function for {topic} using {detail}.",
            "My code for {topic} fails under {detail}; how can I fix it?",
            "Show me how to refactor {topic} without using {detail}.",
        ),
        topics=(
            "a binary search tree",
            "rate limiting",
            "csv parsing",
            "an lru cache",
            "matrix multiplication",
            "a web scraper",
            "connection pooling",
            "a state machine",
            "file deduplication",
            "a job scheduler",
        ),
        aspect_prior={
            "step_by_step": 0.5,
            "edge_cases": 0.45,
            "constraints": 0.3,
            "examples": 0.3,
            "format": 0.2,
            "depth": 0.15,
        },
        share=1.8,
    ),
    Category(
        name="writing",
        templates=(
            "Draft a {detail} about {topic}.",
            "Help me write {topic} with a {detail}.",
            "Compose {topic} aimed at {detail}.",
        ),
        topics=(
            "a cover letter",
            "a product announcement",
            "a wedding toast",
            "an apology email",
            "a grant abstract",
            "a press release",
            "a short story opening",
            "a resignation letter",
        ),
        aspect_prior={
            "style": 0.55,
            "audience": 0.4,
            "structure": 0.3,
            "brevity": 0.2,
            "constraints": 0.2,
        },
        share=1.1,
    ),
    Category(
        name="summarization",
        templates=(
            "Summarize the key points about {topic} for {detail}.",
            "Give me a quick summary of {topic} focusing on {detail}.",
            "Condense what is known about {topic} regarding {detail}.",
        ),
        topics=(
            "the quarterly report",
            "this research field",
            "the meeting notes",
            "the policy debate",
            "the incident timeline",
            "the product roadmap",
        ),
        aspect_prior={
            "brevity": 0.6,
            "structure": 0.35,
            "format": 0.25,
            "verification": 0.2,
        },
        share=0.9,
    ),
    Category(
        name="translation",
        templates=(
            "Translate {topic} into {detail} and keep the tone.",
            "How would you render {topic} in {detail}?",
            "Provide a faithful translation of {topic} for {detail}.",
        ),
        topics=(
            "this legal clause",
            "a marketing slogan",
            "an old proverb",
            "the user manual",
            "a poem stanza",
            "the error message",
        ),
        aspect_prior={
            "style": 0.5,
            "constraints": 0.35,
            "context": 0.3,
            "verification": 0.2,
        },
        share=0.7,
    ),
    Category(
        name="math",
        templates=(
            "Solve this problem about {topic} given {detail}.",
            "If there are {topic}, how many are left after {detail}?",
            "Compute {topic} under {detail} and show the work.",
        ),
        topics=(
            "ten birds on a tree",
            "compound growth rates",
            "a probability puzzle",
            "an optimization budget",
            "a geometry configuration",
            "a number sequence",
        ),
        aspect_prior={
            "step_by_step": 0.6,
            "logic_trap": 0.4,
            "verification": 0.35,
            "brevity": 0.1,
        },
        share=0.9,
    ),
    Category(
        name="reasoning",
        templates=(
            "Here is a tricky question about {topic}: what happens if {detail}?",
            "Think carefully before answering: does {topic} imply {detail}?",
            "A riddle about {topic}: explain the outcome given {detail}.",
        ),
        topics=(
            "a lying villager",
            "two trains approaching",
            "a leaky bucket",
            "the surgeon puzzle",
            "a locked room",
            "the birthday paradox",
        ),
        aspect_prior={
            "logic_trap": 0.65,
            "step_by_step": 0.45,
            "verification": 0.3,
            "depth": 0.2,
        },
        share=0.9,
    ),
    Category(
        name="brainstorming",
        templates=(
            "Give me ideas for {topic} suited to {detail}.",
            "Brainstorm approaches to {topic} considering {detail}.",
            "What are creative options for {topic} given {detail}?",
        ),
        topics=(
            "a team offsite",
            "reducing churn",
            "a science fair project",
            "naming a product",
            "saving energy at home",
            "a fundraising campaign",
        ),
        aspect_prior={
            "examples": 0.5,
            "structure": 0.3,
            "audience": 0.25,
            "comparison": 0.2,
        },
        share=0.8,
    ),
    Category(
        name="roleplay",
        templates=(
            "Act as {detail} and discuss {topic} with me.",
            "In the style of {detail}, respond to questions about {topic}.",
            "Pretend you are {detail}; how would you handle {topic}?",
        ),
        topics=(
            "a customer complaint",
            "a job interview",
            "a history lesson",
            "a negotiation",
            "a medical consultation",
            "a travel briefing",
        ),
        aspect_prior={
            "style": 0.6,
            "context": 0.4,
            "audience": 0.25,
            "constraints": 0.2,
        },
        share=0.7,
    ),
    Category(
        name="extraction",
        templates=(
            "Extract the {detail} from this passage about {topic}.",
            "List every {detail} mentioned regarding {topic}, as json.",
            "Pull out the {detail} related to {topic} in a table.",
        ),
        topics=(
            "vendor contracts",
            "patient records",
            "server logs",
            "survey feedback",
            "invoice history",
            "job postings",
        ),
        aspect_prior={
            "format": 0.65,
            "constraints": 0.35,
            "verification": 0.25,
            "brevity": 0.2,
        },
        share=0.7,
    ),
    Category(
        name="recommendation",
        templates=(
            "Which is better for {topic}: option a versus option b, given {detail}?",
            "Recommend something for {topic} considering {detail}.",
            "Compare choices for {topic} with pros and cons under {detail}.",
        ),
        topics=(
            "a starter laptop",
            "a database engine",
            "a beginner camera",
            "team messaging tools",
            "a travel destination",
            "an exercise routine",
        ),
        aspect_prior={
            "comparison": 0.65,
            "audience": 0.3,
            "constraints": 0.3,
            "examples": 0.2,
        },
        share=0.8,
    ),
    Category(
        name="analysis",
        templates=(
            "Analyze {topic} in detail with respect to {detail}.",
            "What are the trade offs of {topic} under {detail}?",
            "Assess the impact of {topic} on {detail} comprehensively.",
        ),
        topics=(
            "remote work policies",
            "cache eviction strategies",
            "renewable subsidies",
            "a merger proposal",
            "apartment renting versus buying",
            "microservice migration",
        ),
        aspect_prior={
            "depth": 0.6,
            "comparison": 0.4,
            "structure": 0.35,
            "edge_cases": 0.2,
        },
        share=0.9,
    ),
    Category(
        name="knowledge",
        templates=(
            "Is it true that {topic} causes {detail}?",
            "Fact check the claim that {topic} leads to {detail}.",
            "What does the evidence say about {topic} and {detail}?",
        ),
        topics=(
            "vitamin supplements",
            "coffee consumption",
            "screen time",
            "cold exposure",
            "intermittent fasting",
            "red wine",
        ),
        aspect_prior={
            "verification": 0.65,
            "depth": 0.35,
            "examples": 0.2,
            "brevity": 0.15,
        },
        share=0.8,
    ),
    Category(
        name="chitchat",
        templates=(
            "Tell me something interesting about {topic} and {detail}.",
            "What do you think about {topic} these days, especially {detail}?",
            "Chat with me about {topic}; I am curious about {detail}.",
        ),
        topics=(
            "space exploration",
            "street food",
            "old movies",
            "houseplants",
            "marathon training",
            "board games",
        ),
        aspect_prior={
            "examples": 0.3,
            "brevity": 0.25,
            "style": 0.2,
            "depth": 0.15,
        },
        share=0.6,
    ),
)

CATEGORIES: dict[str, Category] = {c.name: c for c in _CATEGORY_LIST}


def category_names() -> list[str]:
    """All category names in registry order."""
    return [c.name for c in _CATEGORY_LIST]
