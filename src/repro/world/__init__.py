"""The synthetic prompt universe (LMSYS-1M / WildChat surrogate).

Real LLM evaluation hinges on a causal chain the paper exploits: user
prompts carry *latent needs* (be careful of the trap, explain step by step,
respect the format, …); responses that address those needs are better; good
complementary prompts surface the needs explicitly.  This package makes that
chain concrete and measurable:

* :mod:`repro.world.aspects` — the taxonomy of latent needs, with the cue
  phrases that signal them in prompts, the directive phrases that address
  them in complementary prompts, and the marker phrases that evidence them
  in responses.
* :mod:`repro.world.categories` — the 14 prompt categories of Figure 6.
* :mod:`repro.world.prompts` — the synthetic corpus generator (with
  duplicates and junk, so the collection pipeline has real work).
* :mod:`repro.world.quality` — the ground-truth response-quality oracle.
"""

from repro.world.aspects import ASPECTS, Aspect, aspect_names
from repro.world.categories import CATEGORIES, Category, category_names
from repro.world.prompts import CorpusConfig, PromptFactory, SyntheticPrompt
from repro.world.quality import QualityAssessment, assess_response

__all__ = [
    "ASPECTS",
    "Aspect",
    "aspect_names",
    "CATEGORIES",
    "Category",
    "category_names",
    "CorpusConfig",
    "PromptFactory",
    "SyntheticPrompt",
    "QualityAssessment",
    "assess_response",
]
