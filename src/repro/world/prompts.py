"""Synthetic prompt corpus generator (LMSYS-1M / WildChat surrogate).

Every prompt is born with ground truth attached: its category, its latent
aspect *needs*, and its topic words.  The surface text expresses needs
through cue phrases — usually, but not always (``cue_rate``), and
occasionally misleadingly (``misleading_cue_rate``) — so downstream
components that only see text face a realistic inference problem.

The corpus builder additionally injects exact duplicates, near-duplicates,
and junk, which is precisely the dirt the paper's collection pipeline
(§3.1) exists to remove.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigError
from repro.world.aspects import ASPECTS, find_cues
from repro.world.categories import CATEGORIES, Category, category_names

__all__ = ["SyntheticPrompt", "CorpusConfig", "PromptFactory", "CUE_SENTENCES"]

# Carrier sentences embedding one cue phrase per aspect; appended to prompt
# text when a sampled need is not already cued by the template itself.
CUE_SENTENCES: dict[str, tuple[str, ...]] = {
    "step_by_step": (
        "Please walk me through it.",
        "Show me how to approach this.",
    ),
    "logic_trap": (
        "It sounds like a tricky question.",
        "Think carefully before you answer.",
    ),
    "depth": (
        "Please explain it in detail.",
        "I want a comprehensive treatment.",
    ),
    "structure": (
        "Make it well organized.",
        "I would like it easy to follow.",
    ),
    "examples": (
        "Please show an example too.",
        "Illustrate it with examples, such as what a practitioner would use.",
    ),
    "audience": (
        "Keep it suitable for beginners.",
        "I am new to this area.",
    ),
    "format": (
        "Return it as json.",
        "Put the result in a table.",
    ),
    "constraints": (
        "Use at most a handful of items.",
        "Do it without using external tools.",
    ),
    "context": (
        "Answer in the context of my situation.",
        "Remember this is a historical setting.",
    ),
    "edge_cases": (
        "Mention what if the input is empty.",
        "I care about corner cases.",
    ),
    "style": (
        "Keep a formal tone.",
        "Use a friendly voice.",
    ),
    "brevity": (
        "Answer briefly.",
        "Be concise.",
    ),
    "comparison": (
        "Weigh the pros and cons.",
        "Tell me which is better.",
    ),
    "verification": (
        "Please double check the facts.",
        "Make sure it is accurate.",
    ),
}

_JUNK_TEXTS: tuple[str, ...] = (
    "hi",
    "test test test",
    "asdf qwer zxcv",
    "?????",
    "lorem ipsum dolor sit amet amet amet",
    "aaaaaa bbbbb cccc",
    "ok",
    "hello hello hello hello",
)

_DETAILS: tuple[str, ...] = (
    "a tight deadline",
    "limited memory",
    "a noisy environment",
    "beginner users",
    "a legacy system",
    "strict regulations",
    "a small budget",
    "high traffic",
    "an offline setting",
    "a mixed audience",
    "unreliable data",
    "a mobile device",
)



@dataclass(frozen=True)
class SyntheticPrompt:
    """A user prompt with its ground-truth annotations.

    Downstream *systems* (PAS, baselines, simulated LLMs) may only read
    ``text``; the annotations exist for corpus construction and for the
    quality oracle / evaluation layer, mirroring how a human study designer
    knows what a test prompt demands.
    """

    uid: int
    text: str
    category: str
    needs: frozenset[str]
    topic: str
    is_junk: bool = False
    dup_of: int | None = None
    hard: bool = False

    @property
    def topic_words(self) -> frozenset[str]:
        return frozenset(w for w in self.topic.lower().split() if len(w) > 3)

    def as_dict(self) -> dict:
        """JSON-safe dict with a stable key order (for structured export)."""
        return {
            "uid": self.uid,
            "text": self.text,
            "category": self.category,
            "needs": sorted(self.needs),
            "topic": self.topic,
            "is_junk": self.is_junk,
            "dup_of": self.dup_of,
            "hard": self.hard,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SyntheticPrompt":
        """Inverse of :meth:`as_dict`: ``from_dict(p.as_dict()) == p``."""
        return cls(
            uid=int(data["uid"]),
            text=data["text"],
            category=data["category"],
            needs=frozenset(data["needs"]),
            topic=data["topic"],
            is_junk=bool(data["is_junk"]),
            dup_of=None if data["dup_of"] is None else int(data["dup_of"]),
            hard=bool(data["hard"]),
        )


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for the raw corpus (pre-pipeline) composition."""

    n_prompts: int = 2000
    junk_rate: float = 0.08
    exact_duplicate_rate: float = 0.08
    near_duplicate_rate: float = 0.08
    cue_rate: float = 0.85
    misleading_cue_rate: float = 0.04
    max_needs: int = 4

    def validate(self) -> None:
        rates = (
            self.junk_rate,
            self.exact_duplicate_rate,
            self.near_duplicate_rate,
            self.cue_rate,
            self.misleading_cue_rate,
        )
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ConfigError(f"all rates must be within [0, 1]: {self}")
        if self.junk_rate + self.exact_duplicate_rate + self.near_duplicate_rate > 0.9:
            raise ConfigError("dirt rates leave too little clean data")
        if self.n_prompts < 0:
            raise ConfigError(f"n_prompts must be non-negative, got {self.n_prompts}")
        if self.max_needs < 1:
            raise ConfigError(f"max_needs must be >= 1, got {self.max_needs}")


@dataclass
class PromptFactory:
    """Deterministic generator of synthetic prompts and corpora."""

    rng: np.random.Generator
    _next_uid: int = field(default=0, init=False)

    def _fresh_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def _sample_needs(self, category: Category, max_needs: int, hard: bool) -> set[str]:
        needs = {
            aspect
            for aspect, prior in category.aspect_prior.items()
            if self.rng.random() < prior
        }
        if hard:
            hard_pool = [
                a
                for a in ("logic_trap", "constraints", "edge_cases")
                if a in category.aspect_prior or a in ("logic_trap", "constraints")
            ]
            needs.add(str(self.rng.choice(hard_pool)))
            while len(needs) < 2:
                needs.add(str(self.rng.choice(list(category.aspect_prior))))
        if not needs:
            # Guarantee at least one need: take the category's modal aspect.
            needs.add(max(category.aspect_prior, key=category.aspect_prior.get))
        while len(needs) > max_needs:
            needs.discard(str(self.rng.choice(sorted(needs))))
        return needs

    def _render_text(
        self,
        category: Category,
        needs: set[str],
        cue_rate: float,
        misleading_cue_rate: float,
    ) -> tuple[str, str]:
        template = str(self.rng.choice(category.templates))
        topic = str(self.rng.choice(category.topics))
        detail = str(self.rng.choice(_DETAILS))
        text = template.format(topic=topic, detail=detail)

        already_cued = set(find_cues(text))
        for need in sorted(needs):
            if need in already_cued:
                continue
            if self.rng.random() < cue_rate:
                bank = CUE_SENTENCES[need]
                text += " " + str(bank[int(self.rng.integers(len(bank)))])
        if self.rng.random() < misleading_cue_rate:
            decoys = [a for a in ASPECTS if a not in needs]
            decoy = str(self.rng.choice(decoys))
            bank = CUE_SENTENCES[decoy]
            text += " " + str(bank[int(self.rng.integers(len(bank)))])
        return text, topic

    def make_prompt(
        self,
        category: str | None = None,
        hard: bool = False,
        cue_rate: float = 0.85,
        misleading_cue_rate: float = 0.04,
        max_needs: int = 4,
    ) -> SyntheticPrompt:
        """Generate one clean prompt, optionally from a fixed category."""
        if category is None:
            names = category_names()
            shares = np.array([CATEGORIES[n].share for n in names], dtype=float)
            category = str(self.rng.choice(names, p=shares / shares.sum()))
        if category not in CATEGORIES:
            raise ConfigError(f"unknown category {category!r}")
        cat = CATEGORIES[category]
        needs = self._sample_needs(cat, max_needs, hard)
        text, topic = self._render_text(cat, needs, cue_rate, misleading_cue_rate)
        return SyntheticPrompt(
            uid=self._fresh_uid(),
            text=text,
            category=category,
            needs=frozenset(needs),
            topic=topic,
            hard=hard,
        )

    def make_junk(self) -> SyntheticPrompt:
        """Generate one junk prompt (what the quality filter must remove)."""
        text = str(self.rng.choice(_JUNK_TEXTS))
        return SyntheticPrompt(
            uid=self._fresh_uid(),
            text=text,
            category=str(self.rng.choice(category_names())),
            needs=frozenset(),
            topic="",
            is_junk=True,
        )

    def make_near_duplicate(
        self, base: SyntheticPrompt, synonym_rate: float = 0.6
    ) -> SyntheticPrompt:
        """Paraphrase a prompt's surface while keeping meaning and needs."""
        from repro.world.paraphrase import paraphrase

        text = paraphrase(base.text, self.rng, synonym_rate=synonym_rate)
        return replace(base, uid=self._fresh_uid(), text=text, dup_of=base.uid)

    def make_exact_duplicate(self, base: SyntheticPrompt) -> SyntheticPrompt:
        return replace(base, uid=self._fresh_uid(), dup_of=base.uid)

    def make_corpus(self, config: CorpusConfig) -> list[SyntheticPrompt]:
        """Build a raw corpus: clean prompts + duplicates + junk, shuffled."""
        config.validate()
        n = config.n_prompts
        n_junk = int(round(n * config.junk_rate))
        n_exact = int(round(n * config.exact_duplicate_rate))
        n_near = int(round(n * config.near_duplicate_rate))
        n_clean = max(n - n_junk - n_exact - n_near, 0)

        clean = [
            self.make_prompt(
                cue_rate=config.cue_rate,
                misleading_cue_rate=config.misleading_cue_rate,
                max_needs=config.max_needs,
            )
            for _ in range(n_clean)
        ]
        corpus: list[SyntheticPrompt] = list(clean)
        if clean:
            for _ in range(n_exact):
                base = clean[int(self.rng.integers(len(clean)))]
                corpus.append(self.make_exact_duplicate(base))
            for _ in range(n_near):
                base = clean[int(self.rng.integers(len(clean)))]
                corpus.append(self.make_near_duplicate(base))
        corpus.extend(self.make_junk() for _ in range(n_junk))
        order = self.rng.permutation(len(corpus))
        return [corpus[i] for i in order]
