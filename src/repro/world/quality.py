"""Ground-truth response-quality oracle.

Given a prompt's latent needs and a response *text*, compute a 0–5 quality
score.  The oracle recovers everything from the response surface:

* **coverage** — which needed aspects the response evidences (marker
  phrases, :func:`repro.world.aspects.find_markers`);
* **spurious effort** — addressed aspects nobody asked for (the critic
  prompt in the paper's Figure 5 penalises "superfluous additions");
* **flaws** — overreach sentences carrying flaw-marker phrases, plus an
  unhandled logic trap, which in the paper's Case Study 1 flips the answer
  from wrong to right;
* **intent** — whether the response stays on the prompt's topic (rewriting
  baselines can drift; complementing cannot, by construction).

The judges in :mod:`repro.judge` observe this score through noise and a
length bias; human-evaluation panels observe it through per-annotator bias.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import textproc
from repro.world.aspects import ASPECTS, find_markers
from repro.world.prompts import SyntheticPrompt

__all__ = ["FLAW_MARKERS", "QualityAssessment", "assess_response"]

# Phrases the simulated engines use when they emit an overreaching /
# incorrect content unit.  Their presence is what a careful grader (or our
# oracle) detects as an error.
FLAW_MARKERS: tuple[str, ...] = (
    "always works without exception",
    "it is guaranteed that",
    "no further checks are needed",
    "everyone agrees that",
    "this is trivially true in all cases",
    "the naive answer is clearly right",
)

_BASE_SCORE = 1.6
_COVERAGE_WEIGHT = 2.6
_FLAW_PENALTY = 0.55
_SPURIOUS_PENALTY = 0.35
_INTENT_PENALTY = 1.8
_TRAP_FLAWS = 2  # an unhandled logic trap counts as this many flaws
_MAX_SCORE = 5.0


@dataclass(frozen=True)
class QualityAssessment:
    """Decomposed quality judgement for one (prompt, response) pair."""

    score: float
    coverage: float
    covered_needs: frozenset[str]
    missed_needs: frozenset[str]
    spurious_aspects: frozenset[str]
    flaw_count: int
    intent_overlap: float
    response_tokens: int

    @property
    def addressed_trap(self) -> bool:
        return "logic_trap" in self.covered_needs


def count_flaws(response_text: str) -> int:
    """Count flaw-marker occurrences in a response."""
    stream = f" {textproc.wordstream(response_text)} "
    return sum(stream.count(f" {marker} ") for marker in FLAW_MARKERS)


def intent_overlap(prompt: SyntheticPrompt, response_text: str) -> float:
    """Fraction of the prompt's topic words echoed by the response."""
    topic_words = prompt.topic_words
    if not topic_words:
        return 1.0
    response_words = set(textproc.words(response_text))
    return len(topic_words & response_words) / len(topic_words)


def assess_response(prompt: SyntheticPrompt, response_text: str) -> QualityAssessment:
    """Score a response against the prompt's ground-truth needs."""
    evidenced = find_markers(response_text)
    needs = set(prompt.needs)
    covered = evidenced & needs
    missed = needs - evidenced
    spurious = evidenced - needs

    if needs:
        weight_total = sum(ASPECTS[a].weight for a in needs)
        weight_covered = sum(ASPECTS[a].weight for a in covered)
        coverage = weight_covered / weight_total
    else:
        coverage = 1.0

    flaws = count_flaws(response_text)
    if "logic_trap" in missed:
        flaws += _TRAP_FLAWS

    overlap = intent_overlap(prompt, response_text)
    n_tokens = len(textproc.normalize(response_text).split())

    score = (
        _BASE_SCORE
        + _COVERAGE_WEIGHT * coverage
        - _FLAW_PENALTY * flaws
        - _SPURIOUS_PENALTY * len(spurious)
        - _INTENT_PENALTY * (1.0 - overlap)
    )
    score = min(max(score, 0.0), _MAX_SCORE)
    return QualityAssessment(
        score=score,
        coverage=coverage,
        covered_needs=frozenset(covered),
        missed_needs=frozenset(missed),
        spurious_aspects=frozenset(spurious),
        flaw_count=flaws,
        intent_overlap=overlap,
        response_tokens=n_tokens,
    )
