"""Byte-pair encoding, trained from scratch.

Word-level tokens are fine for the simulation's semantics, but usage
accounting against real APIs is subword-based; ``BpeTokenizer`` provides a
faithful small BPE: train merges on a corpus, encode/decode any text, and
count subword tokens.  The implementation follows the original
Sennrich-style algorithm over word frequency tables with an end-of-word
marker.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import NotFittedError
from repro.utils import textproc

__all__ = ["BpeTokenizer"]

_EOW = "</w>"


class BpeTokenizer:
    """Trainable byte-pair-encoding tokenizer.

    Parameters
    ----------
    n_merges:
        Number of merge operations to learn; the vocabulary is the base
        characters plus one symbol per merge.
    """

    def __init__(self, n_merges: int = 200):
        if n_merges < 0:
            raise ValueError(f"n_merges must be non-negative, got {n_merges}")
        self.n_merges = n_merges
        self._merges: list[tuple[str, str]] = []
        self._ranks: dict[tuple[str, str], int] = {}
        self._fitted = False

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    @staticmethod
    def _word_to_symbols(word: str) -> tuple[str, ...]:
        return (*word, _EOW)

    def fit(self, corpus: list[str]) -> "BpeTokenizer":
        """Learn merge operations from a corpus of documents."""
        if not corpus:
            raise NotFittedError("cannot train BPE on an empty corpus")
        word_freq: Counter[tuple[str, ...]] = Counter()
        for doc in corpus:
            for word in textproc.words(doc):
                word_freq[self._word_to_symbols(word)] += 1

        vocab = dict(word_freq)
        merges: list[tuple[str, str]] = []
        for _ in range(self.n_merges):
            pair_freq: Counter[tuple[str, str]] = Counter()
            for symbols, freq in vocab.items():
                for i in range(len(symbols) - 1):
                    pair_freq[(symbols[i], symbols[i + 1])] += freq
            if not pair_freq:
                break
            # Deterministic argmax: highest frequency, then lexicographic.
            best = min(pair_freq.items(), key=lambda kv: (-kv[1], kv[0]))[0]
            if pair_freq[best] < 2:
                break
            merges.append(best)
            vocab = {
                self._apply_merge(symbols, best): freq
                for symbols, freq in vocab.items()
            }
        self._merges = merges
        self._ranks = {pair: rank for rank, pair in enumerate(merges)}
        self._fitted = True
        return self

    @staticmethod
    def _apply_merge(
        symbols: tuple[str, ...], pair: tuple[str, str]
    ) -> tuple[str, ...]:
        out: list[str] = []
        i = 0
        while i < len(symbols):
            if (
                i < len(symbols) - 1
                and symbols[i] == pair[0]
                and symbols[i + 1] == pair[1]
            ):
                out.append(symbols[i] + symbols[i + 1])
                i += 2
            else:
                out.append(symbols[i])
                i += 1
        return tuple(out)

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #

    @property
    def merges(self) -> list[tuple[str, str]]:
        return list(self._merges)

    def encode_word(self, word: str) -> list[str]:
        """Encode one word into learned subword symbols."""
        if not self._fitted:
            raise NotFittedError("BpeTokenizer used before fit()")
        symbols = self._word_to_symbols(word.lower())
        while len(symbols) > 1:
            candidates = [
                (self._ranks[(symbols[i], symbols[i + 1])], i)
                for i in range(len(symbols) - 1)
                if (symbols[i], symbols[i + 1]) in self._ranks
            ]
            if not candidates:
                break
            rank, _ = min(candidates)
            symbols = self._apply_merge(symbols, self._merges[rank])
        return list(symbols)

    def encode(self, text: str) -> list[str]:
        """Encode a document into subword symbols."""
        out: list[str] = []
        for word in textproc.words(text):
            out.extend(self.encode_word(word))
        return out

    def decode(self, symbols: list[str]) -> str:
        """Inverse of :meth:`encode` up to the word level."""
        text = "".join(symbols)
        return text.replace(_EOW, " ").strip()

    def count(self, text: str) -> int:
        """Subword token count (API-style usage accounting)."""
        return len(self.encode(text))

    def compression_ratio(self, text: str) -> float:
        """Characters per subword token; higher means better compression."""
        tokens = self.count(text)
        if tokens == 0:
            return 0.0
        n_chars = sum(len(w) for w in textproc.words(text))
        return n_chars / tokens
