"""Tokenisation and n-gram language modelling substrate."""

from repro.text.bpe import BpeTokenizer
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import Vocabulary
from repro.text.ngram import NgramLanguageModel

__all__ = ["BpeTokenizer", "Tokenizer", "Vocabulary", "NgramLanguageModel"]
