"""A small deterministic word tokenizer with sentence-boundary markers.

The simulated-LLM substrate works at the word level; this tokenizer provides
the shared notion of a "token" across the n-gram LM, the SFT trainer, and the
usage accounting in :mod:`repro.llm.api`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Tokenizer"]

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?|[.,;:!?()]")


@dataclass(frozen=True)
class Tokenizer:
    """Word-level tokenizer producing lowercase tokens plus punctuation.

    Parameters
    ----------
    bos:
        Beginning-of-sequence marker prepended by :meth:`encode` when
        ``add_markers`` is requested.
    eos:
        End-of-sequence marker appended likewise.

    >>> Tokenizer().tokenize("Hello, world!")
    ['hello', ',', 'world', '!']
    """

    bos: str = "<s>"
    eos: str = "</s>"
    unk: str = "<unk>"
    _cache: dict = field(default_factory=dict, compare=False, repr=False)

    def tokenize(self, text: str) -> list[str]:
        """Split text into lowercase word/punctuation tokens."""
        return _TOKEN_RE.findall(text.lower())

    def encode(self, text: str, add_markers: bool = False) -> list[str]:
        """Tokenize; optionally wrap with BOS/EOS markers."""
        toks = self.tokenize(text)
        if add_markers:
            return [self.bos, *toks, self.eos]
        return toks

    def detokenize(self, tokens: list[str]) -> str:
        """Inverse of :meth:`tokenize` up to whitespace around punctuation."""
        out: list[str] = []
        for tok in tokens:
            if tok in (self.bos, self.eos):
                continue
            if out and tok in ".,;:!?)":
                out[-1] = out[-1] + tok
            elif out and out[-1].endswith("("):
                out[-1] = out[-1] + tok
            else:
                out.append(tok)
        return " ".join(out)

    def count(self, text: str) -> int:
        """Token count used for usage accounting and length metrics."""
        return len(self.tokenize(text))
