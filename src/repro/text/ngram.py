"""Backoff n-gram language model with add-k smoothing.

The quality-filtering stage of the collection pipeline (paper §3.1) scores
prompt *fluency*; a trigram model with stupid-backoff-style interpolation is
plenty for that job and trains in milliseconds on the synthetic corpus.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.errors import NotFittedError
from repro.text.tokenizer import Tokenizer

__all__ = ["NgramLanguageModel"]


class NgramLanguageModel:
    """Interpolated add-k n-gram LM over word tokens.

    Parameters
    ----------
    order:
        Maximum n-gram order (``3`` = trigram).
    add_k:
        Additive smoothing constant applied at every order.
    backoff:
        Interpolation weight: each lower order contributes
        ``backoff ** depth`` of the probability mass.
    """

    def __init__(self, order: int = 3, add_k: float = 0.1, backoff: float = 0.4):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if add_k <= 0:
            raise ValueError(f"add_k must be positive, got {add_k}")
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        self.order = order
        self.add_k = add_k
        self.backoff = backoff
        self._tokenizer = Tokenizer()
        self._counts: list[Counter[tuple[str, ...]]] = [Counter() for _ in range(order)]
        self._context_counts: list[Counter[tuple[str, ...]]] = [
            Counter() for _ in range(order)
        ]
        self._vocab_size = 0
        self._fitted = False

    def fit(self, corpus: Iterable[str]) -> "NgramLanguageModel":
        """Count n-grams over an iterable of documents."""
        vocab: set[str] = set()
        n_docs = 0
        for doc in corpus:
            tokens = self._tokenizer.encode(doc, add_markers=True)
            vocab.update(tokens)
            n_docs += 1
            for n in range(1, self.order + 1):
                for i in range(len(tokens) - n + 1):
                    gram = tuple(tokens[i : i + n])
                    self._counts[n - 1][gram] += 1
                    self._context_counts[n - 1][gram[:-1]] += 1
        if n_docs == 0:
            raise NotFittedError("cannot fit an n-gram model on an empty corpus")
        self._vocab_size = max(len(vocab), 1)
        self._fitted = True
        return self

    @property
    def vocab_size(self) -> int:
        return self._vocab_size

    def _prob(self, gram: tuple[str, ...]) -> float:
        """Add-k probability of the final token given the gram's context."""
        n = len(gram)
        num = self._counts[n - 1][gram] + self.add_k
        den = self._context_counts[n - 1][gram[:-1]] + self.add_k * self._vocab_size
        return num / den

    def token_logprob(self, context: list[str], token: str) -> float:
        """Interpolated log probability of ``token`` after ``context``."""
        self._require_fitted()
        total = 0.0
        weight = 1.0 - self.backoff
        remaining = 1.0
        for n in range(self.order, 0, -1):
            ctx = tuple(context[-(n - 1) :]) if n > 1 else ()
            gram = (*ctx, token)
            if n < self.order:
                weight = remaining * (1.0 - self.backoff)
            if n == 1:
                weight = remaining  # dump all remaining mass on unigrams
            total += weight * self._prob(gram)
            remaining -= weight
        return math.log(max(total, 1e-300))

    def logprob(self, text: str) -> float:
        """Total log probability of a document (with BOS/EOS markers)."""
        tokens = self._tokenizer.encode(text, add_markers=True)
        lp = 0.0
        for i in range(1, len(tokens)):
            lp += self.token_logprob(tokens[:i], tokens[i])
        return lp

    def perplexity(self, text: str) -> float:
        """Per-token perplexity; ``inf``-free (floors probabilities)."""
        tokens = self._tokenizer.encode(text, add_markers=True)
        n_predicted = max(len(tokens) - 1, 1)
        return math.exp(-self.logprob(text) / n_predicted)

    def fluency(self, text: str) -> float:
        """Map perplexity to a (0, 1] fluency score (higher = more fluent)."""
        return 1.0 / (1.0 + math.log1p(self.perplexity(text)))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("NgramLanguageModel used before fit()")
