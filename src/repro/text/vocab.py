"""Token vocabulary with frequency tracking and id mapping."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

__all__ = ["Vocabulary"]


class Vocabulary:
    """Bidirectional token <-> id map built from observed frequencies.

    Ids are assigned in decreasing frequency order (ties broken
    lexicographically) so the mapping is deterministic for a given corpus.
    Id 0 is always the unknown token.
    """

    def __init__(self, unk: str = "<unk>"):
        self._unk = unk
        self._counts: Counter[str] = Counter()
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._finalized = False

    @property
    def unk(self) -> str:
        return self._unk

    def observe(self, tokens: Iterable[str]) -> None:
        """Accumulate token frequencies; invalid after :meth:`finalize`."""
        if self._finalized:
            raise RuntimeError("cannot observe tokens after finalize()")
        self._counts.update(tokens)

    def finalize(self, min_count: int = 1, max_size: int | None = None) -> None:
        """Freeze the vocabulary, assigning ids by (-count, token)."""
        if self._finalized:
            raise RuntimeError("vocabulary already finalized")
        ranked = sorted(
            (t for t, c in self._counts.items() if c >= min_count and t != self._unk),
            key=lambda t: (-self._counts[t], t),
        )
        if max_size is not None:
            ranked = ranked[: max(0, max_size - 1)]
        self._id_to_token = [self._unk, *ranked]
        self._token_to_id = {t: i for i, t in enumerate(self._id_to_token)}
        self._finalized = True

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        """Token id, or 0 (unk) for out-of-vocabulary tokens."""
        self._require_finalized()
        return self._token_to_id.get(token, 0)

    def token_of(self, idx: int) -> str:
        self._require_finalized()
        return self._id_to_token[idx]

    def count_of(self, token: str) -> int:
        return self._counts.get(token, 0)

    def encode(self, tokens: Iterable[str]) -> list[int]:
        return [self.id_of(t) for t in tokens]

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("vocabulary must be finalized before lookup")
