"""Plug one trained PAS model into many target LLMs (paper §3.4, Table 1).

The same PAS instance augments an API-served model (via ChatClient, with
usage accounting and simulated transient failures) and open-weight models
(direct engine calls), and a mini-benchmark shows the win-rate lift per
target — the LLM-agnostic claim of Table 3 in action.

Run:  python examples/plug_and_play.py
"""

from __future__ import annotations

from repro import ChatClient, PasEnhancedLLM, SimulatedLLM, build_default_pas
from repro.baselines.base import NoApe
from repro.core.plug import PasApe
from repro.judge.alpaca_eval import AlpacaEvalBenchmark
from repro.judge.suites import build_alpaca_suite

TARGETS = ("gpt-4-0613", "gpt-3.5-turbo-1106", "qwen2-72b-chat")


def main() -> None:
    pas = build_default_pas(n_prompts=600, seed=0)
    print(f"one PAS model ({pas.base_model_name}), {pas.n_training_pairs} pairs\n")

    # 1. API-style usage with accounting and retries.
    client = ChatClient(
        engine=SimulatedLLM("gpt-4-0613"), failure_rate=0.2, max_retries=5
    )
    enhanced = PasEnhancedLLM(pas=pas, target=client)
    enhanced.ask("How do I implement rate limiting for high traffic? Show me how to approach this.")
    usage = client.usage
    print("API usage after one augmented call:")
    print(f"  requests={usage.requests} prompt_tokens={usage.prompt_tokens} "
          f"completion_tokens={usage.completion_tokens} transient_failures={usage.failures}\n")

    # 2. The same PAS across several targets: AlpacaEval win-rate lift.
    suite = build_alpaca_suite(100, seed=11)
    bench = AlpacaEvalBenchmark(suite)
    print(f"{'target':24s} {'baseline':>9s} {'with PAS':>9s} {'lift':>7s}")
    for name in TARGETS:
        engine = SimulatedLLM(name)
        base = bench.evaluate(engine, NoApe()).win_rate
        augmented = bench.evaluate(engine, PasApe(pas)).win_rate
        print(f"{name:24s} {base:8.1f}% {augmented:8.1f}% {augmented - base:+6.1f}")


if __name__ == "__main__":
    main()
