"""A synthetic day of traffic through the continuous serving engine.

Four acts, one logical clock:

1. ``TrafficGenerator`` draws seed-pure traces: a steady poisson stream
   of Zipf-skewed prompts, and a diurnal "synthetic day" with two tenant
   classes (interactive traffic carries a deadline and outranks batch).
2. The compat engine (``max_inflight=1``) serves the steady trace
   synchronously: every completion stalls the whole gateway for its
   simulated latency.
3. The overlapped engine (``max_inflight=8``) serves the *same* trace
   with eight completions in the air; the makespan ratio is the speedup
   CI gates in ``benchmarks/test_bench_serving_engine.py``.
4. The synthetic day under overload policy: a queue bound plus deadline
   shedding keeps tail latency flat through the peak hours — and shows
   what the deadlines would have done to the synchronous path.

Run:  python examples/continuous_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import PasModel, build_default_dataset
from repro.serve.engine import EngineConfig, ServingEngine
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.traffic import TenantProfile, TrafficConfig, TrafficGenerator
from repro.world.prompts import PromptFactory


def _pool() -> list[str]:
    factory = PromptFactory(rng=np.random.default_rng(4))
    return [factory.make_prompt().text for _ in range(48)]


def steady_trace(n_requests: int):
    """A deadline-free poisson stream: every request must be served."""
    config = TrafficConfig(
        n_requests=n_requests, seed=11, process="poisson", mean_gap_ticks=1.0
    )
    return TrafficGenerator(_pool(), config).trace()


def day_trace(n_requests: int):
    config = TrafficConfig(
        n_requests=n_requests,
        seed=17,
        process="diurnal",
        mean_gap_ticks=2.0,
        period_ticks=n_requests,  # one full day over the trace
        amplitude=0.8,
        tenants=(
            TenantProfile(
                name="interactive", weight=0.7, priority=1, deadline_ticks=96
            ),
            TenantProfile(name="batch", weight=0.3, priority=0),
        ),
    )
    return TrafficGenerator(_pool(), config).trace()


def report(label: str, stats) -> None:
    occupancy = ", ".join(
        f"{model} {value:.2f}" for model, value in stats.occupancy.items()
    )
    print(f"  {label}:")
    print(f"    makespan {stats.makespan_ticks} ticks, "
          f"{stats.served_per_ktick:.0f} served/ktick, "
          f"peak inflight {stats.peak_inflight}")
    print(f"    latency p50/p99 {stats.latency_p50:.0f}/{stats.latency_p99:.0f}, "
          f"queue wait p50/p99 {stats.queue_wait_p50:.0f}/{stats.queue_wait_p99:.0f}")
    print(f"    served {stats.served}, shed {dict(stats.shed) or '{}'} "
          f"(rate {stats.shed_rate:.2f}), occupancy {occupancy}")


def main() -> None:
    dataset = build_default_dataset(n_prompts=120, seed=5, curate=True)
    pas = PasModel(base_model="qwen2-7b-chat", seed=5).train(dataset)
    def gateway() -> PasGateway:
        return PasGateway(pas=pas, config=GatewayConfig(seed=5))

    steady = steady_trace(300)
    print(f"=== steady stream: {len(steady)} requests, "
          f"ticks {steady[0].tick}..{steady[-1].tick} ===\n")
    compat = ServingEngine(gateway(), EngineConfig(max_inflight=1)).run(steady)
    report("compat (max_inflight=1)", compat.stats)
    overlapped = ServingEngine(gateway(), EngineConfig(max_inflight=8)).run(steady)
    report("overlapped (max_inflight=8)", overlapped.stats)
    assert overlapped.responses == compat.responses  # same answers, sooner
    ratio = compat.stats.makespan_ticks / overlapped.stats.makespan_ticks
    print(f"\n  overlap speedup: {ratio:.1f}x on the same trace, "
          f"bit-identical responses\n")

    day = day_trace(400)
    print(f"=== synthetic day: {len(day)} requests, "
          f"ticks {day[0].tick}..{day[-1].tick} ===\n")
    sync_day = ServingEngine(gateway(), EngineConfig(max_inflight=1)).run(day)
    report("synchronous day (deadlines melt it)", sync_day.stats)
    policed = ServingEngine(
        gateway(),
        EngineConfig(max_inflight=8, max_queue=32, deadline_ticks=64),
    ).run(day)
    report("overlapped day + overload policy (max_queue=32, deadline=64)",
           policed.stats)
    shed = next(
        (r for r in policed.responses if r.status == "failed" and r.attempts == 0),
        None,
    )
    if shed is not None:
        print(f"\n  a shed response never reaches the gateway: "
              f"status={shed.status!r}, attempts={shed.attempts}, "
              f"error={shed.error!r}")


if __name__ == "__main__":
    main()
