"""Walk the PAS data pipeline stage by stage (paper §3.1–§3.3).

Shows what each stage removes or adds: raw synthetic corpus (with
duplicates and junk) → HNSW dedup → LLM quality filter → classification →
few-shot generation with critic selection/regeneration → the Figure-6
category distribution of the finished dataset.

Run:  python examples/build_dataset.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import bar_chart
from repro.pipeline.collect import PromptCollector
from repro.pipeline.generate import GenerationConfig, PairGenerator
from repro.world.prompts import CorpusConfig, PromptFactory


def main() -> None:
    factory = PromptFactory(rng=np.random.default_rng(7))
    config = CorpusConfig(n_prompts=800)
    corpus = factory.make_corpus(config)
    n_junk = sum(1 for p in corpus if p.is_junk)
    n_dups = sum(1 for p in corpus if p.dup_of is not None)
    print(f"raw corpus: {len(corpus)} prompts ({n_junk} junk, {n_dups} duplicates)\n")

    collector = PromptCollector(seed=7)
    collected = collector.collect(corpus)
    print("collection (Figure 3a):")
    print(f"  after dedup:          {collected.n_after_dedup}"
          f"  (-{collected.stats['removed_by_dedup']})")
    print(f"  after quality filter: {collected.n_after_quality}"
          f"  (-{collected.stats['removed_by_quality']})")
    print(f"  junk leak rate:       {collected.junk_leak_rate:.1%}")
    correct = sum(
        1 for s in collected.selected if s.predicted_category == s.prompt.category
    )
    print(f"  classifier accuracy:  {correct / max(len(collected.selected), 1):.1%}\n")

    generator = PairGenerator(config=GenerationConfig(curate=True))
    dataset = generator.build_dataset(collected.selected)
    rounds = [p.regeneration_rounds for p in dataset]
    print("generation (Figure 3b / Algorithm 1):")
    print(f"  pairs kept:        {len(dataset)}")
    print(f"  pairs dropped:     {dataset.n_dropped} (critic never satisfied)")
    print(f"  regenerated >=1x:  {sum(1 for r in rounds if r > 0)}")
    print(f"  label quality:     {dataset.mean_label_quality():.3f}\n")

    counts = dict(sorted(dataset.category_distribution().items(), key=lambda kv: -kv[1]))
    print(bar_chart(list(counts), [float(v) for v in counts.values()],
                    title="dataset distribution (Figure 6)"))

    sample = dataset.pairs[0]
    print("\nsample pair:")
    print(f"  prompt:     {sample.prompt_text}")
    print(f"  complement: {sample.complement_text}")


if __name__ == "__main__":
    main()
