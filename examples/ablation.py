"""Reproduce the Table 5 ablation at example scale.

Trains two PAS models from the same collected prompts — one on the curated
dataset (Algorithm 1 with selection + regeneration), one on the raw
generated dataset — and compares both the training-label quality and the
downstream benchmark scores.

Run:  python examples/ablation.py
"""

from __future__ import annotations

from repro import PasModel, build_default_dataset
from repro.core.plug import PasApe
from repro.judge.arena_hard import ArenaHardBenchmark
from repro.judge.suites import build_arena_hard_suite
from repro.llm.engine import SimulatedLLM


def main() -> None:
    curated = build_default_dataset(n_prompts=700, seed=2, curate=True)
    raw = build_default_dataset(n_prompts=700, seed=2, curate=False)
    print("training data:")
    print(f"  curated: {len(curated)} pairs, label quality {curated.mean_label_quality():.3f}"
          f" ({curated.n_dropped} dropped by the critic)")
    print(f"  raw:     {len(raw)} pairs, label quality {raw.mean_label_quality():.3f}\n")

    pas = PasModel(seed=2).train(curated)
    pas_raw = PasModel(seed=2).train(raw)

    bench = ArenaHardBenchmark(build_arena_hard_suite(120, seed=21))
    print(f"{'target':24s} {'PAS':>7s} {'wo selection':>13s} {'drop':>7s}")
    for name in ("gpt-4-0613", "qwen2-72b-chat", "llama-3-70b-instruct"):
        engine = SimulatedLLM(name)
        with_sel = bench.evaluate(engine, PasApe(pas)).score
        without = bench.evaluate(engine, PasApe(pas_raw, name="pas-raw")).score
        print(f"{name:24s} {with_sel:6.1f}% {without:12.1f}% {without - with_sel:+6.1f}")
    print("\n(the paper's Table 5 reports an average drop of -3.8 points)")


if __name__ == "__main__":
    main()
