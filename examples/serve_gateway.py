"""Deploying PAS: train once, save, serve many models through the gateway.

Shows the production loop the paper's "plug-and-play system" framing
implies: persist a trained model to disk, reload it in a serving process,
route traffic for several target models through one gateway with a
complement cache, and optionally add an iterative feedback round for weak
targets.

Run:  python examples/serve_gateway.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GatewayConfig, PasGateway, build_default_pas
from repro.core.iterative import IterativePas
from repro.core.pas import PasModel
from repro.llm.engine import SimulatedLLM
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory
from repro.world.quality import assess_response

import numpy as np


def main() -> None:
    # --- train once, persist ---
    pas = build_default_pas(n_prompts=600, seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        path = pas.save(Path(tmp) / "pas-qwen2-7b")
        print(f"trained on {pas.n_training_pairs} pairs, saved to {path.name}")

        # --- reload in the "serving process" ---
        served = PasModel.load(path)

    gateway = PasGateway(
        pas=served,
        config=GatewayConfig(cache_size=512, failure_rate=0.1, max_retries=5),
    )

    # --- route traffic for several targets, with repeats (cache food) ---
    factory = PromptFactory(rng=np.random.default_rng(17))
    prompts = [factory.make_prompt().text for _ in range(12)]
    traffic = prompts * 3  # each prompt arrives three times
    models = ["gpt-4-0613", "qwen2-72b-chat", "gpt-3.5-turbo-1106"]
    for i, prompt in enumerate(traffic):
        gateway.ask(ServeRequest(prompt=prompt, model=models[i % len(models)]))

    stats = gateway.stats
    print(f"\nserved {stats.requests} requests across {len(stats.per_model)} models")
    print(f"augmentation rate: {stats.augmentation_rate:.0%}")
    print(f"complement cache hit rate: {gateway.cache_hit_rate:.0%}")
    print(f"tokens: {stats.prompt_tokens} in / {stats.completion_tokens} out")

    # --- iterative round for a weak target ---
    weak = SimulatedLLM("gpt-3.5-turbo-1106")
    one_shot = IterativePas(pas=served, max_rounds=1)
    two_round = IterativePas(pas=served, max_rounds=2)
    probe = factory.make_prompt(cue_rate=1.0)
    base = assess_response(probe, one_shot.ask(weak, probe.text).final_response).score
    improved = assess_response(probe, two_round.ask(weak, probe.text).final_response).score
    print(f"\niterative PAS on a weak target: one-shot {base:.2f} -> two rounds {improved:.2f}")


if __name__ == "__main__":
    main()
