"""Domain-specialised PAS (paper §3.3: the pipeline "allows us to control
the categories of the generated data ... to enhance prompt capabilities in
specific domains").

Builds a coding-only complementary dataset, trains a specialist PAS, and
compares it against the general-purpose PAS on a coding-heavy suite and on
an out-of-domain suite — specialisation helps in-domain and costs a little
out-of-domain.

Run:  python examples/custom_category.py
"""

from __future__ import annotations

import numpy as np

from repro import PasModel, build_default_dataset
from repro.core.plug import PasApe
from repro.judge.alpaca_eval import AlpacaEvalBenchmark
from repro.judge.suites import BenchmarkSuite
from repro.llm.engine import SimulatedLLM
from repro.pipeline.collect import PromptCollector
from repro.pipeline.generate import GenerationConfig, PairGenerator
from repro.world.prompts import PromptFactory


def build_category_dataset(category: str, n_prompts: int, seed: int):
    """Targeted generation: feed the pipeline prompts of one category only."""
    factory = PromptFactory(rng=np.random.default_rng(seed))
    corpus = [factory.make_prompt(category=category) for _ in range(n_prompts)]
    collected = PromptCollector(seed=seed).collect(corpus)
    generator = PairGenerator(config=GenerationConfig(curate=True))
    return generator.build_dataset(collected.selected)


def category_suite(category: str, n: int, seed: int) -> BenchmarkSuite:
    factory = PromptFactory(rng=np.random.default_rng(seed))
    prompts = tuple(factory.make_prompt(category=category) for _ in range(n))
    return BenchmarkSuite(name=f"{category}-suite", prompts=prompts)


def main() -> None:
    coding_dataset = build_category_dataset("coding", n_prompts=500, seed=5)
    general_dataset = build_default_dataset(n_prompts=700, seed=5)
    print(f"specialist dataset: {len(coding_dataset)} coding pairs")
    print(f"generalist dataset: {len(general_dataset)} mixed pairs\n")

    specialist = PasModel(seed=5).train(coding_dataset)
    generalist = PasModel(seed=5).train(general_dataset)

    engine = SimulatedLLM("gpt-4-0613")
    for suite_category in ("coding", "writing"):
        suite = category_suite(suite_category, 100, seed=31)
        bench = AlpacaEvalBenchmark(suite)
        spec = bench.evaluate(engine, PasApe(specialist, name="specialist")).win_rate
        gen = bench.evaluate(engine, PasApe(generalist, name="generalist")).win_rate
        print(f"{suite_category:10s} suite: specialist {spec:5.1f}%  generalist {gen:5.1f}%")
    print("\nspecialisation should lead in-domain (coding) and trail out-of-domain.")


if __name__ == "__main__":
    main()
