"""Elastic fleets: scale out, hedge the tail, drain back — by JSON plan.

One :class:`Router` lives through a whole synthetic day; every sizing
and policy decision arrives as a declarative :class:`FleetPlan` JSON
document that :meth:`Router.apply` reconciles against live state:

1. **Quiet morning** — one replica serves the off-peak trace alone.
2. **Peak scale-out** — a plan with ``replicas=4`` grows the fleet
   live; consistent hashing moves only ~1/N of the key space onto each
   newcomer (measured here by re-routing the same keys before/after).
3. **A straggling replica** — the afternoon plan injects seed-pure
   latency spikes and arms a hedge: after 4 ticks of silence the same
   request races on a second replica and the first completion wins.
   Tail latency drops; losers are cancelled and counted.
4. **Evening drain** — ``replicas=1`` again: draining replicas take no
   new placements, finish their in-flight work, retire their clocks
   into the fleet clock, and discard their replica-scope caches under
   ``pas_router_cache_evicted_total``.

Everything runs on the logical clock at fixed seeds, so the whole day
replays bit-identically.

Run:  python examples/elastic_fleet.py
"""

from __future__ import annotations

import json

import numpy as np

from repro import PasModel, build_default_dataset
from repro.obs import Observability
from repro.serve import (
    EngineConfig,
    GatewayConfig,
    Router,
    RouterConfig,
    ServingConfig,
    ServingEngine,
    TimedRequest,
    TrafficConfig,
    TrafficGenerator,
)
from repro.serve.types import ServeRequest
from repro.utils.serialize import deserialize
from repro.world.prompts import PromptFactory

#: The day's sizing decisions, as they would live in a config store:
#: versioned JSON documents, one per phase, applied in order.
PLANS = {
    "peak": """
        {"schema": "FleetPlan/1", "replicas": 4}
    """,
    "spiky afternoon": """
        {"schema": "FleetPlan/1", "replicas": 4,
         "hedge": {"after_ticks": 4},
         "spike_rate": 0.3, "spike_ticks": 64}
    """,
    "evening drain": """
        {"schema": "FleetPlan/1", "replicas": 1}
    """,
}


def _pool() -> list[str]:
    factory = PromptFactory(rng=np.random.default_rng(4))
    return [factory.make_prompt().text for _ in range(32)]


def _trace(n: int, seed: int, gap: float):
    config = TrafficConfig(
        n_requests=n, seed=seed, process="bursty", mean_gap_ticks=gap
    )
    return TrafficGenerator(_pool(), config).trace()


def report(label: str, stats) -> None:
    print(f"  {label}: makespan {stats.makespan_ticks} ticks, "
          f"latency p50/p99 {stats.latency_p50:.0f}/{stats.latency_p99:.0f}, "
          f"served {stats.served}")


def placements(router: Router, keys: list[str]) -> dict[str, int]:
    """Where each key routes right now (returning every assignment)."""
    out = {}
    for key in keys:
        request = ServeRequest(prompt=key, model="gpt-4-0613")
        timed = TimedRequest(tick=1, request=request, tenant="default")
        rid = router.route(request, timed)
        router.release(rid)
        out[key] = rid
    return out


def main() -> None:
    dataset = build_default_dataset(n_prompts=120, seed=5, curate=True)
    pas = PasModel(base_model="qwen2-7b-chat", seed=5).train(dataset)

    obs = Observability.enabled(event_capacity=65536)
    config = ServingConfig(
        router=RouterConfig(n_replicas=1, policy="hash", seed=7),
        gateway=GatewayConfig(seed=5),
        engine=EngineConfig(max_inflight=8),
    )
    router = Router(pas, config, obs)

    # --- act 1: the quiet morning, one replica ---------------------------
    print("=== act 1: quiet morning on one replica ===\n")
    morning = ServingEngine(router, config).run(_trace(80, seed=21, gap=4.0))
    report("1 replica", morning.stats)

    # --- act 2: peak scale-out, ~1/N remap -------------------------------
    print("\n=== act 2: apply the peak plan (replicas=4) ===\n")
    keys = [f"synthetic prompt number {i}? show me how." for i in range(300)]
    before = placements(router, keys)
    diff = router.apply(deserialize(json.loads(PLANS["peak"])))
    after = placements(router, keys)
    moved = sum(before[key] != after[key] for key in keys)
    print(f"  diff: {diff}")
    print(f"  remapped {moved}/{len(keys)} hash keys "
          f"({moved / len(keys):.2f}; 3 new replicas of 4 ~= 0.75 — each "
          f"newcomer took only its own ~1/4 share)")
    peak_trace = _trace(300, seed=22, gap=0.5)
    peak = ServingEngine(router, config).run(peak_trace)
    report("4 replicas at peak", peak.stats)
    print(f"  placements per replica: {router.stats.routed}")

    # --- act 3: spikes arrive, the hedge races them ----------------------
    print("\n=== act 3: latency spikes -> hedged retries ===\n")
    spiky_plan = deserialize(json.loads(PLANS["spiky afternoon"]))
    unhedged = dict(json.loads(PLANS["spiky afternoon"]), hedge=None)
    unhedged_plan = deserialize(unhedged)
    afternoon = _trace(200, seed=23, gap=1.0)
    router.apply(unhedged_plan)
    slow = ServingEngine(router, config).run(afternoon)
    report("spiky, no hedge", slow.stats)
    router.apply(spiky_plan)
    fast = ServingEngine(router, config).run(afternoon)
    report("spiky, hedged  ", fast.stats)
    hedges = router.stats.hedges
    print(f"  hedges {hedges} -> p99 "
          f"{slow.stats.latency_p99:.0f} -> {fast.stats.latency_p99:.0f} ticks "
          f"({slow.stats.makespan_ticks / fast.stats.makespan_ticks:.2f}x "
          f"makespan)")

    # --- act 4: drain back down, gracefully ------------------------------
    print("\n=== act 4: apply the evening plan (replicas=1) ===\n")
    diff = router.apply(deserialize(json.loads(PLANS["evening drain"])))
    print(f"  diff: {diff}")
    evening = ServingEngine(router, config).run(_trace(60, seed=24, gap=4.0))
    report("drained to 1", evening.stats)
    counters = obs.metrics.snapshot()["counters"]
    scale_events = [
        (e["attrs"]["action"], e["attrs"]["replica"])
        for e in obs.events.as_dicts()
        if e["kind"] == "router.scale"
    ]
    evicted = sum(
        series["value"]
        for series in counters.get("pas_router_cache_evicted_total", [])
    )
    print(f"  cache entries evicted at retirement: {evicted}")
    print(f"  scale events: {scale_events}")
    print(f"  live replicas: {router.live_rids} (rids are never reused)")


if __name__ == "__main__":
    main()
