"""Tour the resilient serving layer: outcomes, fault injection, breakers.

The paper's plug-and-play promise (§3.4) means PAS must never cost the
user their answer: if augmentation fails, the raw prompt still gets
completed (a ``degraded`` outcome); only when the target model itself
cannot answer does the gateway return a ``failed`` response — and even
then it *returns* it rather than raising.  This example exercises that
contract under a deterministic :class:`FaultPlan`:

1. Outcome-based serving — one ``ServeResponse`` per request with
   ``status`` in {ok, degraded, failed}, never an escaped exception.
2. Deadlines and backoff — a ``RetryPolicy`` budgets logical time per
   request; latency spikes and retries consume it.
3. Per-model circuit breakers — an outage window trips the breaker,
   requests fail fast while it is open, and a half-open probe closes it
   once the backend recovers.

Everything is seeded and runs on the logical clock (one tick per
request), so the exact same failures, retries, and breaker transitions
happen every run.

Run:  python examples/resilient_serving.py
"""

from __future__ import annotations

import collections
import json

import numpy as np

from repro import build_default_pas
from repro.resilience import FaultPlan, OutageWindow, RetryPolicy
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory


def outcome_demo(pas, traffic: list[str]) -> None:
    print("=== 1. outcomes under injected faults ===")
    plan = FaultPlan(
        seed=7,
        completion_failure_rate=0.35,
        augment_failure_rate=0.25,
    )
    gateway = PasGateway(
        pas=pas,
        config=GatewayConfig(cache_size=64, max_retries=1, fault_plan=plan),
    )
    responses = gateway.ask_batch(
        [ServeRequest(prompt=p, model="gpt-4-0613") for p in traffic]
    )
    counts = collections.Counter(r.status for r in responses)
    print(f"  {len(responses)} requests -> {dict(counts)} (zero exceptions)")
    degraded = next(r for r in responses if r.status == "degraded")
    print(f"  a degraded response still answers the raw prompt: "
          f"complement={degraded.complement!r}, error={degraded.error!r}")
    failed = next(r for r in responses if r.status == "failed")
    print(f"  a failed response reports why: attempts={failed.attempts}, "
          f"error={failed.error!r}")
    print(f"  stats: served={gateway.stats.served} "
          f"(= requests {gateway.stats.requests} - failures {gateway.stats.failures}), "
          f"degraded={gateway.stats.degraded}\n")


def deadline_demo(pas, traffic: list[str]) -> None:
    print("=== 2. deadlines and backoff ===")
    plan = FaultPlan(
        seed=3,
        completion_failure_rate=0.5,
        latency_spike_rate=0.3,
        latency_spike_ticks=6,
    )
    policy = RetryPolicy(max_retries=4, base_backoff=1.0, max_backoff=8.0,
                         deadline_ticks=6.0, seed=3)
    gateway = PasGateway(
        pas=pas,
        config=GatewayConfig(cache_size=64, fault_plan=plan, retry_policy=policy),
    )
    responses = gateway.ask_batch(
        [ServeRequest(prompt=p, model="gpt-4-0613") for p in traffic]
    )
    deadline_failures = [r for r in responses if r.failed and "Deadline" in r.error]
    print(f"  {gateway.stats.retries} retried attempts, "
          f"{gateway.stats.backoff_ticks:.1f} logical ticks spent backing off")
    print(f"  {len(deadline_failures)} requests gave up at the deadline "
          f"rather than retrying forever\n")


def breaker_demo(pas, traffic: list[str]) -> None:
    print("=== 3. per-model circuit breaker riding out an outage ===")
    plan = FaultPlan(outages=(OutageWindow("gpt-4-0613", 0, 12),))
    gateway = PasGateway(
        pas=pas,
        config=GatewayConfig(
            cache_size=64,
            max_retries=0,
            fault_plan=plan,
            breaker_threshold=3,
            breaker_recovery_ticks=4,
        ),
    )
    for prompt in (traffic * 2)[:20]:
        gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613"))
    breaker = gateway.breaker_for("gpt-4-0613")
    print(f"  outage over ticks [0, 12), breaker trips after 3 failures,")
    print(f"  probes every 4 ticks: {breaker.trips} trips, now {breaker.state}")
    print("  transitions (tick, state):", breaker.transitions)
    print(f"  stats export: {json.dumps(gateway.stats.as_dict())[:120]}...\n")


def main() -> None:
    pas = build_default_pas(n_prompts=200, seed=0)
    factory = PromptFactory(rng=np.random.default_rng(23))
    traffic = [factory.make_prompt().text for _ in range(16)]

    outcome_demo(pas, traffic)
    deadline_demo(pas, traffic)
    breaker_demo(pas, traffic)

    print("same seeds, same faults, same transitions -- every run.")


if __name__ == "__main__":
    main()
