"""Run the industrial curation pipeline: run, kill, resume.

The offline §3.1–§3.2 flow as five checkpointed units of work — under a
critic fault plan, with a deterministic kill scheduled mid-generation:

1. run the pipeline with ``fail_after_pairs`` armed; it dies mid-way
   through the Algorithm-1 loop, leaving stage checkpoints (plus a
   partial ``generate`` checkpoint) on disk;
2. resume with the kill switch removed: completed stages replay from
   checkpoints, generation continues from the partial record;
3. compare against an uninterrupted run of the same config — datasets,
   skipped pairs, exported event/trace JSONL, and the metrics registry
   are all identical, chaos included.

Everything here is deterministic: rerunning this script prints the same
checkpoints, the same skips, the same byte-for-byte comparison.

Run:  python examples/pipeline_run.py
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path

import numpy as np

from repro.obs import Observability
from repro.pipeline import (
    PipelineConfig,
    PipelineInterrupted,
    PipelineRunner,
    RunnerConfig,
)
from repro.resilience import FaultPlan, RetryPolicy
from repro.world.prompts import PromptFactory


def make_config(fail_after_pairs: int | None) -> PipelineConfig:
    return PipelineConfig(
        runner=RunnerConfig(
            checkpoint_every=8,
            fault_plan=FaultPlan(seed=7, completion_failure_rate=0.35),
            retry_policy=RetryPolicy(max_retries=1),
            fail_after_pairs=fail_after_pairs,
        ),
        seed=5,
    )


def main() -> None:
    factory = PromptFactory(rng=np.random.default_rng(5))
    corpus = [factory.make_prompt() for _ in range(120)]

    with tempfile.TemporaryDirectory() as tmp:
        ckpt_dir = Path(tmp) / "checkpoints"

        print("=== 1. run with a kill scheduled mid-generation ===")
        armed = PipelineRunner(
            make_config(fail_after_pairs=12),
            checkpoint_dir=ckpt_dir,
            obs=Observability.enabled(),
        )
        try:
            armed.run(corpus)
        except PipelineInterrupted as err:
            print(f"  killed: {err}")
        for path in sorted(ckpt_dir.iterdir()):
            print(f"  checkpoint on disk: {path.name}")
        print()

        print("=== 2. resume with the kill switch removed ===")
        resumed_runner = PipelineRunner(
            make_config(fail_after_pairs=None),
            checkpoint_dir=ckpt_dir,
            obs=Observability.enabled(),
        )
        resumed = resumed_runner.run(corpus)
        print(f"  resumed stages : {resumed.resumed_stages}")
        print(f"  dataset        : {len(resumed.dataset)} pairs "
              f"({resumed.dataset.n_dropped} dropped by the critic cap)")
        print(f"  skipped by outage/faults: {resumed.n_pairs_skipped} "
              f"uids={resumed.skipped_uids}")
        print()

        print("=== 3. the uninterrupted run is bit-identical ===")
        straight_runner = PipelineRunner(
            make_config(fail_after_pairs=None),
            checkpoint_dir=Path(tmp) / "fresh",
            obs=Observability.enabled(),
        )
        straight = straight_runner.run(corpus)
        print(f"  datasets equal : {straight.dataset == resumed.dataset}")
        print(f"  skips equal    : {straight.skipped_uids == resumed.skipped_uids}")

        a, b = Path(tmp) / "obs_resumed", Path(tmp) / "obs_straight"
        resumed_runner.export_obs(a)
        straight_runner.export_obs(b)
        for name in ("events.jsonl", "traces.jsonl"):
            same = (a / name).read_bytes() == (b / name).read_bytes()
            print(f"  {name:<13}: byte-identical = {same}")
        same_metrics = (
            resumed_runner.obs.metrics.as_dict() == straight_runner.obs.metrics.as_dict()
        )
        print(f"  metrics       : equal = {same_metrics}")
        print()

        print("=== 4. what the resumed run went through ===")
        events = resumed_runner.obs.events
        print(f"  counts by kind: {events.kinds()}")
        for event in list(events)[:4]:
            print(f"    tick {event.tick:4d}  {event.kind:<22} {event.attrs}")
        skipped = [e for e in events if e.kind == "pipeline.pair_skipped"]
        if skipped:
            e = skipped[0]
            print(f"    ... first skip: tick {e.tick} {e.attrs}")
        print()

        print("=== 5. stage spans on the logical clock ===")
        for trace in resumed_runner.obs.tracer.store:
            root = trace.root
            print(
                f"  {root.name:<18} ticks [{root.start_tick:4d}, {root.end_tick:4d}) "
                f"attrs={root.attrs}"
            )


if __name__ == "__main__":
    main()
