"""Tour the observability subsystem: traces, metrics, events.

A chaos workload — injected completion/augmentation faults, a scheduled
outage, tight circuit breakers — served through an instrumented gateway,
then inspected three ways:

1. the trace store: per-request span trees on the logical clock, with a
   waterfall rendering of the slowest request;
2. the metrics registry: outcome/cache/token counters and attempt
   histograms, rendered as a Prometheus text exposition;
3. the event log: faults, breaker transitions, degraded/failed serves,
   in the order the system experienced them.

Everything here is deterministic: rerunning this script prints the same
traces, the same metrics, the same events.

Run:  python examples/observability.py
"""

from __future__ import annotations

from repro import PasModel, build_default_dataset
from repro.obs import Observability
from repro.resilience import FaultPlan, OutageWindow, RetryPolicy
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory

import numpy as np


def build_gateway() -> PasGateway:
    dataset = build_default_dataset(n_prompts=120, seed=5, curate=True)
    pas = PasModel(base_model="qwen2-7b-chat", seed=5).train(dataset)
    config = GatewayConfig(
        cache_size=16,
        embed_cache_size=16,
        fault_plan=FaultPlan(
            seed=13,
            completion_failure_rate=0.3,
            augment_failure_rate=0.15,
            outages=(OutageWindow("gpt-4-0613", 20, 26),),
        ),
        retry_policy=RetryPolicy(max_retries=2, base_backoff=1.0, max_backoff=4.0),
        breaker_threshold=2,
        breaker_recovery_ticks=6,
    )
    return PasGateway(pas=pas, config=config, obs=Observability.enabled(wall=True))


def main() -> None:
    gateway = build_gateway()
    factory = PromptFactory(rng=np.random.default_rng(11))
    pool = [factory.make_prompt().text for _ in range(10)]
    rng = np.random.default_rng(12)
    traffic = [pool[i] for i in rng.integers(0, len(pool), size=40)]

    print("=== 1. chaos workload ===")
    responses = [
        gateway.ask(ServeRequest(prompt=p, model="gpt-4-0613", request_id=f"r{i}"))
        for i, p in enumerate(traffic)
    ]
    by_status = {
        status: sum(r.status == status for r in responses)
        for status in ("ok", "degraded", "failed")
    }
    print(f"  {len(responses)} requests -> {by_status}\n")

    obs = gateway.obs
    print("=== 2. traces: the slowest request, as a waterfall ===")
    slowest = obs.tracer.store.slowest(1)[0]
    print("  " + slowest.waterfall(width=24).replace("\n", "\n  "))
    failed = obs.tracer.store.by_status("failed")
    if failed:
        root = failed[0].root
        print(
            f"\n  first failed trace: stage={root.attrs['stage']}, "
            f"attempts={root.attrs['attempts']},\n"
            f"    error={root.attrs['error']!r}"
        )
    print()

    print("=== 3. metrics: Prometheus exposition (excerpt) ===")
    exposition = obs.metrics.render_prometheus()
    for line in exposition.splitlines():
        if line.startswith(("pas_requests_total", "pas_faults_total")):
            print(f"  {line}")
    print(f"  ... ({len(exposition.splitlines())} lines total)\n")

    print("=== 4. events: what the system went through ===")
    print(f"  counts by kind: {obs.events.kinds()}")
    for event in list(obs.events)[:6]:
        print(f"    tick {event.tick:3d}  {event.kind:<20} {event.attrs}")
    print()

    print("=== 5. wall-clock stage attribution (from the same spans) ===")
    from repro.serve.gateway import derive_stage_timings

    timings = derive_stage_timings(obs.tracer)
    total = sum(timings.values())
    print("  " + ", ".join(
        f"{stage} {seconds / total:.0%}" for stage, seconds in timings.items()
    ))


if __name__ == "__main__":
    main()
