"""Close the serve→judge→select loop with an adaptive augmentation policy.

A plain gateway always serves the one complement its trained PAS model
renders.  An :class:`~repro.policy.AugmentationPolicy` turns that choice
into a deterministic contextual bandit: per ``(category, tenant)`` it
explores four strategies — the static PAS complement, a salt-perturbed
render, an aspect-subset render, and no augmentation — judges every
served answer, and converges on whichever wins for *that* traffic.

This example serves two very different tenants through one policied
gateway: ``devs`` send well-cued prompts and ``lobby`` sends no-needs
chatter that fools the aspect predictor.  Whether augmenting chatter
helps is *not* assumed — it depends on the deployment's exact response
draws — so the policy measures it: per context it converges on the arm
with the best judged mean, and the printed table shows the evidence.
It then promotes the best judged pairs into the golden exemplar set —
the online feedback leg.

Run:  python examples/adaptive_policy.py
"""

from __future__ import annotations

import numpy as np

from repro import PasModel, build_default_dataset
from repro.core.golden import build_golden_data
from repro.policy import AugmentationPolicy, PolicyConfig
from repro.serve.gateway import GatewayConfig, PasGateway
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory


def main() -> None:
    pas = PasModel(base_model="qwen2-7b-chat", seed=7).train(
        build_default_dataset(n_prompts=300, seed=7, curate=True)
    )

    factory = PromptFactory(rng=np.random.default_rng(7))
    cued = [factory.make_prompt(cue_rate=0.9) for _ in range(60)]
    # Chatter that *fools the predictor* is where the choice matters:
    # when no aspects trigger, every strategy serves the raw prompt and
    # the arms tie; when chatter over-triggers, the strategies genuinely
    # diverge and only the judged rewards can say which one wins.
    chatter = [
        junk
        for junk in (factory.make_junk() for _ in range(40))
        if pas.predictor.predict_aspects(junk.text)
    ]

    policy = AugmentationPolicy.from_config(
        pas,
        PolicyConfig(enabled=True, epsilon=0.35, seed=7, judge_seed=7),
        corpus=cued + chatter,
    )
    gateway = PasGateway(pas, GatewayConfig(seed=7), policy=policy)

    requests = [
        ServeRequest(prompt=p.text, model="gpt-3.5-turbo-1106", tenant=tenant)
        for round_ in range(8)
        for tenant, prompts in (("devs", cued), ("lobby", chatter * 8))
        for p in prompts
    ]
    for response in gateway.ask_batch(requests):
        assert response.status == "ok" and response.strategy is not None

    print(f"served {gateway.stats.requests} requests; learned per context:\n")
    print(f"{'category':18s} {'tenant':8s} {'best arm':10s} judged means")
    for context in policy.bandit.contexts:
        category, tenant = context
        pulls = policy.bandit.pulls(context)
        means = {
            arm: float(policy.bandit.mean_reward(context, arm))
            for arm, n in pulls.items()
            if n
        }
        best = policy.bandit.best_arm(context)
        print(
            f"{category:18s} {tenant:8s} {best:10s} "
            + "  ".join(f"{arm}={mean:.2f}" for arm, mean in means.items())
        )
        # The convergence guarantee: the learned arm IS the one with the
        # best judged mean for that traffic, ties broken deterministically.
        assert means[best] == max(means.values()), (context, means)

    lobby = [c for c in policy.bandit.contexts if c[1] == "lobby"]
    assert lobby, "the over-triggering chatter must reach the bandit"
    print(
        "\nper (category, tenant) the policy measured all four strategies and"
        "\nconverged on the judged winner — nothing about augmentation is assumed."
    )

    # The feedback leg: promote gated winners into the golden exemplars.
    golden = build_golden_data()
    before = sum(len(golden.exemplars(c)) for c in golden.categories())
    refreshed = policy.feedback.refresh(golden)
    after = sum(len(refreshed.exemplars(c)) for c in refreshed.categories())
    print(
        f"\ngolden refresh: {before} exemplars -> {after} "
        f"(+{after - before} judged winners above the "
        f"{policy.feedback.quality_gate:.1f} gate)"
    )

    # The whole loop is resumable: config + bandit state round-trip.
    resumed = AugmentationPolicy.from_config(
        pas, PolicyConfig.from_dict(policy.as_dict()), corpus=cued + chatter
    )
    assert resumed.snapshot() == policy.snapshot()
    print("resumed policy state matches bit for bit.")


if __name__ == "__main__":
    main()
