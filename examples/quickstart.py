"""Quickstart: build a PAS model and plug it into a target LLM.

Runs the whole §3 pipeline at small scale (synthetic corpus → collection →
Algorithm 1 → SFT), then shows the plug-and-play loop of §3.4 on a single
prompt: the original response, the complement PAS generates, and the
enhanced response.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PasEnhancedLLM, SimulatedLLM, build_default_pas
from repro.world.quality import assess_response
from repro.experiments.casestudies import CASE_PROMPTS


def main() -> None:
    print("training PAS (pipeline + SFT, small scale)...")
    pas = build_default_pas(n_prompts=600, seed=0)
    print(f"trained on {pas.n_training_pairs} generated pairs\n")

    target = SimulatedLLM("gpt-4-0613")
    enhanced = PasEnhancedLLM(pas=pas, target=target)

    prompt = CASE_PROMPTS[0]  # the ten-birds logic trap
    print(f"user prompt:\n  {prompt.text}\n")
    print(f"PAS complement:\n  {pas.augment(prompt.text)}\n")

    without = enhanced.ask_plain(prompt.text)
    with_pas = enhanced.ask(prompt.text)
    q_without = assess_response(prompt, without)
    q_with = assess_response(prompt, with_pas)

    print(f"--- without PAS (quality {q_without.score:.2f}/5) ---\n{without}\n")
    print(f"--- with PAS (quality {q_with.score:.2f}/5) ---\n{with_pas}\n")
    print(f"improvement: {q_with.score - q_without.score:+.2f} points")


if __name__ == "__main__":
    main()
