"""Horizontal scale-out: one drowning gateway vs a routed replica fleet.

Four acts, one logical clock:

1. A diurnal trace arrives faster at peak than one gateway's slots can
   drain: the single-gateway engine's queue waits blow up through the
   busy hours.
2. The same trace through a 4-replica :class:`Router` under the
   least-loaded policy: same completions (every replica holds the same
   trained PAS model and config), a fraction of the makespan.
3. Consistent-hash affinity vs balance on a Zipf-skewed stream: hash
   placement keeps a prompt's repeats on the replica that already cached
   its complement, and the fleet hit rate shows it.  ``cache_scope=
   "shared"`` buys the same hits back for the balance policy by
   threading one cache through every replica.
4. Multi-tenancy and failover: a quota'd free tier sheds its overflow at
   admission (``attempts=0`` — the fleet never sees it), and a weighted
   model pool fails over around a model whose circuit breaker an outage
   forced open.

Everything is seed-pure: one :class:`ServingConfig` describes the whole
deployment and survives a round trip through JSON.

Run:  python examples/router_serving.py
"""

from __future__ import annotations

import json

import numpy as np

from repro import PasModel, build_default_dataset
from repro.resilience import FaultPlan, OutageWindow
from repro.serve import (
    EngineConfig,
    GatewayConfig,
    ModelPool,
    Router,
    RouterConfig,
    ServingConfig,
    ServingEngine,
    TenantPolicy,
    TenantProfile,
    TrafficConfig,
    TrafficGenerator,
)
from repro.world.prompts import PromptFactory


def _pool() -> list[str]:
    factory = PromptFactory(rng=np.random.default_rng(4))
    return [factory.make_prompt().text for _ in range(48)]


def day_trace(n_requests: int, **kwargs):
    config = TrafficConfig(
        n_requests=n_requests,
        seed=17,
        process="diurnal",
        mean_gap_ticks=0.5,  # peak arrivals outrun one replica
        period_ticks=n_requests,
        amplitude=0.8,
        **kwargs,
    )
    return TrafficGenerator(_pool(), config).trace()


def report(label: str, stats) -> None:
    print(f"  {label}:")
    print(f"    makespan {stats.makespan_ticks} ticks, "
          f"{stats.served_per_ktick:.0f} served/ktick, "
          f"latency p50/p99 {stats.latency_p50:.0f}/{stats.latency_p99:.0f}, "
          f"queue wait p99 {stats.queue_wait_p99:.0f}")
    print(f"    served {stats.served}, shed {dict(stats.shed) or '{}'}")


def main() -> None:
    dataset = build_default_dataset(n_prompts=120, seed=5, curate=True)
    pas = PasModel(base_model="qwen2-7b-chat", seed=5).train(dataset)
    trace = day_trace(400)

    # --- act 1: one gateway drowns at peak -------------------------------
    print(f"=== one gateway vs the diurnal peak: {len(trace)} requests ===\n")
    single_config = ServingConfig(
        gateway=GatewayConfig(seed=5), engine=EngineConfig(max_inflight=8)
    )
    single_router = Router(pas, single_config)  # 1 replica: the trivial router
    single = ServingEngine(single_router, single_config).run(trace)
    report("single gateway (max_inflight=8)", single.stats)

    # --- act 2: the same day over four replicas --------------------------
    fleet_config = ServingConfig(
        router=RouterConfig(n_replicas=4, policy="least_loaded"),
        gateway=GatewayConfig(seed=5),
        engine=EngineConfig(max_inflight=8),
    )
    fleet_router = Router(pas, fleet_config)
    fleet = ServingEngine(fleet_router, fleet_config).run(trace)
    report("4-replica fleet (least_loaded)", fleet.stats)
    assert [r.response for r in fleet.responses] == [
        r.response for r in single.responses
    ]
    ratio = single.stats.makespan_ticks / fleet.stats.makespan_ticks
    print(f"\n  fleet speedup: {ratio:.1f}x on the same trace, identical "
          f"completions; placements {fleet_router.stats.routed}\n")

    # --- act 3: affinity keeps caches warm -------------------------------
    print("=== placement policy vs fleet cache hit rate (Zipf stream) ===\n")
    zipf = TrafficGenerator(
        _pool(),
        TrafficConfig(n_requests=300, seed=11, mean_gap_ticks=0.5,
                      zipf_exponent=1.2),
    ).trace()
    for policy, scope in (("least_loaded", "replica"), ("hash", "replica"),
                          ("least_loaded", "shared")):
        config = ServingConfig(
            router=RouterConfig(n_replicas=4, policy=policy, cache_scope=scope),
            gateway=GatewayConfig(seed=5),
            engine=EngineConfig(max_inflight=8),
        )
        router = Router(pas, config)
        ServingEngine(router, config).run(zipf)
        print(f"  {policy:>12} / cache_scope={scope:<7} -> "
              f"hit rate {router.cache_hit_rate:.2f}")

    # --- act 4: tenancy and pool failover, one config --------------------
    print("\n=== tenancy + failover, one ServingConfig ===\n")
    config = ServingConfig(
        router=RouterConfig(
            n_replicas=2,
            tenants=(
                TenantPolicy("free", quota=60, quota_window_ticks=128),
                TenantPolicy("paid", priority=5),
            ),
            pools=(
                ModelPool("frontier",
                          (("gpt-4-0613", 3.0), ("gpt-3.5-turbo-1106", 1.0))),
            ),
        ),
        gateway=GatewayConfig(
            seed=5,
            max_retries=1,
            breaker_threshold=2,
            fault_plan=FaultPlan(
                seed=23, outages=(OutageWindow("gpt-4-0613", 40, 100_000),)
            ),
        ),
        engine=EngineConfig(max_inflight=8),
        traffic=TrafficConfig(
            n_requests=400,
            seed=17,
            process="diurnal",
            mean_gap_ticks=0.5,
            period_ticks=400,
            amplitude=0.8,
            tenants=(
                TenantProfile("free", weight=3.0,
                              models=(("frontier", 1.0),)),
                TenantProfile("paid", weight=1.0,
                              models=(("frontier", 1.0),)),
            ),
        ),
    )
    config.validate()
    config = ServingConfig.from_dict(json.loads(json.dumps(config.as_dict())))

    router = Router(pas, config)
    tenant_trace = TrafficGenerator(_pool(), config.traffic).trace()
    result = ServingEngine(router, config).run(tenant_trace)
    report("policed fleet", result.stats)
    print(f"    router sheds {router.stats.sheds}, "
          f"failovers {router.stats.failovers}")
    breakers = router.replicas[0].stats.breaker_state
    print(f"    replica 0 breakers: {breakers}")
    shed = next((r for r in result.responses
                 if r.error and "QuotaExceededError" in r.error), None)
    if shed is not None:
        print(f"    a quota shed never reaches the fleet: "
              f"status={shed.status!r}, attempts={shed.attempts}")


if __name__ == "__main__":
    main()
