"""Tour the parallel serving layer: sharded ANN, micro-batching, two tiers.

Three independent pieces, one shared guarantee — everything parallel or
batched is bit-identical to the scalar loop it accelerates:

1. ``ShardedHnswIndex`` partitions an index round-robin over K HNSW
   shards, builds/searches them on a thread pool, and merges results in a
   declared total order.
2. ``MicroBatcher`` queues live requests on a logical clock and drains
   them into ``PasGateway.ask_batch`` on size/wait triggers.
3. The gateway's two cache tiers (complement LRU over an embedding memo)
   make repeat traffic cheap even when the complement cache thrashes.

Run:  python examples/parallel_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import PasModel, build_default_dataset
from repro.ann.hnsw import HnswIndex
from repro.ann.sharded import ShardedHnswIndex
from repro.embedding.model import EmbeddingModel
import json

from repro.obs import Observability
from repro.serve.gateway import GatewayConfig, PasGateway, derive_stage_timings
from repro.serve.scheduler import MicroBatcher
from repro.serve.types import ServeRequest
from repro.world.prompts import PromptFactory


def sharded_index_demo() -> None:
    print("=== 1. sharded HNSW ===")
    embedder = EmbeddingModel()
    factory = PromptFactory(rng=np.random.default_rng(0))
    corpus = embedder.embed_batch(
        [factory.make_prompt().text for _ in range(200)]
    )
    queries = embedder.embed_batch(
        [factory.make_prompt().text for _ in range(10)]
    )

    mono = HnswIndex(dim=embedder.dim, seed=0)
    mono.add_batch(corpus, range(len(corpus)))
    sharded = ShardedHnswIndex(dim=embedder.dim, n_shards=4, seed=0)
    sharded.add_batch(corpus, range(len(corpus)))
    print(f"  {len(sharded)} vectors over shards {sharded.shard_sizes}")

    hits_mono = mono.search_batch(queries, 5, ef=256)
    hits_shard = sharded.search_batch(queries, 5, ef=256)
    overlap = np.mean([
        len({k for k, _ in a} & {k for k, _ in b}) / 5
        for a, b in zip(hits_mono, hits_shard)
    ])
    serial = sharded.search_batch(queries, 5, ef=256, parallel=False)
    print(f"  top-5 overlap vs monolithic at exhaustive ef: {overlap:.2f}")
    print(f"  parallel == serial search: {hits_shard == serial}\n")


def micro_batching_demo(gateway: PasGateway, traffic: list[str]) -> None:
    print("=== 2. deterministic micro-batching ===")
    batcher = MicroBatcher(gateway.ask_batch, max_batch=8, max_wait=4)
    responses = batcher.run_arrivals(
        (i, ServeRequest(prompt=p, model="gpt-4-0613"))
        for i, p in enumerate(traffic, start=1)
    )
    stats = batcher.stats
    print(f"  {stats.submitted} requests -> {stats.batches} batches "
          f"(mean size {stats.mean_batch_size:.1f}), triggers {stats.triggers}")
    for record in batcher.records[:3]:
        print(f"    tick {record.tick:3d}: size {record.size}, "
              f"trigger={record.trigger}, occupancy {record.occupancy:.2f}, "
              f"mean wait {record.mean_wait_ticks:.1f} ticks")
    print(f"  responses in arrival order: {len(responses)}")
    print(f"  first response as JSON: {json.dumps(responses[0].as_dict())[:100]}...\n")


def two_tier_demo(pas: PasModel, traffic: list[str]) -> None:
    print("=== 3. two-tier caching ===")
    # A tiny complement LRU thrashes on this traffic; the embedding memo
    # underneath still absorbs the expensive half of each re-augmentation.
    config = GatewayConfig(cache_size=4, embed_cache_size=256)
    gateway = PasGateway(pas=pas, config=config)
    for prompt in traffic:
        gateway.ask(ServeRequest(prompt=prompt, model="gpt-4-0613"))
    stats = gateway.stats.as_dict()
    print(f"  {stats['requests']} requests, "
          f"complement hit rate {gateway.cache_hit_rate:.2f}, "
          f"embed hit rate {gateway.embed_cache_hit_rate:.2f}")
    print(f"  embed tier: {stats['embed_cache_hits']} hits / "
          f"{stats['embed_cache_misses']} misses")
    print(f"  stats export keys: {', '.join(list(stats)[:6])}, ...")

    timed = PasGateway(pas=pas, config=config, obs=Observability.enabled(wall=True))
    timed.ask_batch([ServeRequest(prompt=p, model="gpt-4-0613") for p in traffic])
    timings = derive_stage_timings(timed.obs.tracer)
    total = sum(timings.values())
    print("  per-stage time share:", ", ".join(
        f"{stage} {share / total:.0%}" for stage, share in timings.items()
    ))


def main() -> None:
    sharded_index_demo()

    dataset = build_default_dataset(n_prompts=120, seed=5, curate=True)
    pas = PasModel(base_model="qwen2-7b-chat", seed=5).train(dataset)
    factory = PromptFactory(rng=np.random.default_rng(11))
    pool = [factory.make_prompt().text for _ in range(12)]
    rng = np.random.default_rng(12)
    traffic = [pool[i] for i in rng.integers(0, len(pool), size=60)]

    micro_batching_demo(
        PasGateway(pas=pas, config=GatewayConfig(cache_size=256)), traffic
    )
    two_tier_demo(pas, traffic)


if __name__ == "__main__":
    main()
