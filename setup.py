"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs cannot build.  With this shim (and no ``[build-system]`` table in
pyproject.toml), ``pip install -e .`` falls back to ``setup.py develop``,
which works with plain setuptools.
"""

from setuptools import setup

setup()
